"""RetrievalService: batching must change how fast, never what.

The fixture model is a deterministic sign-of-projection hash, so every
test can compute a brute-force per-query reference and require exact
equality against whatever batches the service happened to form.
"""

import threading

import numpy as np
import pytest

from repro.retrieval.hamming import hamming_cdist, pack_bits
from repro.serve import HammingIndex, RetrievalService, ShardedHammingIndex


class SignHashModel:
    """Deterministic stand-in for a trained hash: sign of a projection."""

    def __init__(self, D, L, seed=0, compute_dtype=np.float32):
        rng = np.random.default_rng(seed)
        self.W = rng.standard_normal((D, L))
        self.compute_dtype = compute_dtype
        self.encode_calls = 0

    def encode(self, X):
        self.encode_calls += 1
        return (np.asarray(X) @ self.W.astype(np.asarray(X).dtype) > 0).astype(
            np.uint8
        )


class ExplodingModel(SignHashModel):
    """Raises on demand, to test per-batch error propagation."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.explode = False

    def encode(self, X):
        if self.explode:
            raise RuntimeError("encoder fault injected")
        return super().encode(X)


def ref_results(model, X_base, x, k):
    """Brute-force (distance, id) top-k for one query against X_base."""
    Zb = model.encode(X_base)
    Zq = model.encode(x[None, :])
    D = hamming_cdist(pack_bits(Zq), pack_bits(Zb))[0]
    key = D.astype(np.int64) * (len(Zb) + 1) + np.arange(len(Zb))
    order = np.argsort(key)[:k]
    return order, D[order]


@pytest.fixture
def setup():
    rng = np.random.default_rng(42)
    D, L, n_base = 24, 32, 400
    model = SignHashModel(D, L, seed=1)
    X_base = rng.standard_normal((n_base, D))
    X_query = rng.standard_normal((50, D))
    return model, X_base, X_query


class TestRetrievalService:
    def test_single_query_matches_bruteforce(self, setup):
        model, X_base, X_query = setup
        with RetrievalService.from_data(model, X_base, k=7, max_wait_ms=0.1) as svc:
            for x in X_query[:5]:
                ids, dists = svc.query(x)
                rid, rd = ref_results(model, X_base, x, 7)
                assert np.array_equal(ids, rid)
                assert np.array_equal(dists, rd)

    def test_concurrent_submits_coalesce_and_stay_exact(self, setup):
        # Many threads race into whatever batches form; each per-query
        # answer must still equal the solo brute-force result.
        model, X_base, X_query = setup
        with RetrievalService.from_data(
            model, X_base, k=5, max_wait_ms=5.0, max_batch=16
        ) as svc:
            results = [None] * len(X_query)

            def worker(i):
                results[i] = svc.submit(X_query[i]).result(timeout=30.0)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(X_query))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snap = svc.stats.snapshot()
        assert snap["n_queries"] == len(X_query)
        assert snap["n_batches"] < len(X_query)  # some coalescing happened
        assert snap["max_batch"] <= 16
        for i, (ids, dists) in enumerate(results):
            rid, rd = ref_results(model, X_base, X_query[i], 5)
            assert np.array_equal(ids, rid)
            assert np.array_equal(dists, rd)

    def test_per_request_k_is_exact_prefix(self, setup):
        model, X_base, X_query = setup
        with RetrievalService.from_data(
            model, X_base, k=4, max_wait_ms=5.0, max_batch=8
        ) as svc:
            tickets = [
                svc.submit(X_query[i], k=[2, 9, 1, 6][i % 4]) for i in range(8)
            ]
            for i, t in enumerate(tickets):
                k = [2, 9, 1, 6][i % 4]
                ids, dists = t.result(timeout=30.0)
                assert len(ids) == len(dists) == k
                rid, rd = ref_results(model, X_base, X_query[i], k)
                assert np.array_equal(ids, rid)
                assert np.array_equal(dists, rd)

    def test_sharded_service_matches_flat(self, setup):
        model, X_base, X_query = setup
        with RetrievalService.from_data(model, X_base, k=6, max_wait_ms=0.1) as flat:
            expected = [flat.query(x) for x in X_query[:10]]
        with RetrievalService.from_data(
            model, X_base, n_shards=3, shard_mode="thread", k=6, max_wait_ms=0.1
        ) as sharded:
            assert isinstance(sharded.index, ShardedHammingIndex)
            for x, (eids, eds) in zip(X_query[:10], expected):
                ids, dists = sharded.query(x)
                assert np.array_equal(ids, eids)
                assert np.array_equal(dists, eds)

    def test_add_through_service(self, setup):
        model, X_base, X_query = setup
        X_extra = np.random.default_rng(7).standard_normal((60, X_base.shape[1]))
        with RetrievalService.from_data(model, X_base, k=5, max_wait_ms=0.1) as svc:
            ids = svc.add(X_extra)
            assert ids[0] == len(X_base) and len(ids) == len(X_extra)
            full = np.concatenate([X_base, X_extra])
            for x in X_query[:5]:
                got_ids, got_ds = svc.query(x)
                rid, rd = ref_results(model, full, x, 5)
                assert np.array_equal(got_ids, rid)
                assert np.array_equal(got_ds, rd)

    def test_error_propagates_then_service_recovers(self, setup):
        _, X_base, X_query = setup
        model = ExplodingModel(X_base.shape[1], 32, seed=1)
        with RetrievalService.from_data(model, X_base, k=3, max_wait_ms=0.1) as svc:
            model.explode = True
            ticket = svc.submit(X_query[0])
            with pytest.raises(RuntimeError, match="encoder fault"):
                ticket.result(timeout=30.0)
            model.explode = False  # next batch is a fresh one
            ids, dists = svc.query(X_query[1])
            rid, rd = ref_results(model, X_base, X_query[1], 3)
            assert np.array_equal(ids, rid) and np.array_equal(dists, rd)

    def test_submit_validation(self, setup):
        model, X_base, X_query = setup
        with RetrievalService.from_data(model, X_base) as svc:
            with pytest.raises(ValueError):
                svc.submit(X_query[:2])  # 2-d
            with pytest.raises(ValueError):
                svc.submit(X_query[0], k=0)
            with pytest.raises(ValueError):
                svc.submit(X_query[0], k=len(X_base) + 1)

    def test_constructor_validation(self, setup):
        model, X_base, _ = setup
        index = HammingIndex.from_codes(pack_bits(model.encode(X_base)), 32)
        with pytest.raises(ValueError):
            RetrievalService(model, index, k=0)
        with pytest.raises(ValueError):
            RetrievalService(model, index, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            RetrievalService(model, index, max_batch=0)
        with pytest.raises(TypeError):
            RetrievalService(model, np.zeros((3, 1), dtype=np.uint64))

    def test_close_drains_then_rejects(self, setup):
        model, X_base, X_query = setup
        svc = RetrievalService.from_data(model, X_base, k=3, max_wait_ms=50.0)
        ticket = svc.submit(X_query[0])  # sits in the open window
        svc.close()
        ids, _ = ticket.result(timeout=5.0)  # drained at close, not dropped
        assert len(ids) == 3
        with pytest.raises(RuntimeError):
            svc.submit(X_query[1])
        svc.close()  # idempotent

    def test_ticket_timeout(self, setup):
        model, X_base, X_query = setup
        # A long window and no company: the ticket is not done instantly.
        with RetrievalService.from_data(
            model, X_base, k=3, max_wait_ms=5000.0
        ) as svc:
            ticket = svc.submit(X_query[0])
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.01)
            assert not ticket.done()
