"""Graceful degradation of the serving plane.

A retrieval service must prefer a *flagged partial* answer over a stalled
or failed one: a shard worker that dies (or misses its scan deadline)
costs coverage for one search, never the request — and the index heals
itself by respawning the worker from the retained shard descriptors, so
the very next search is exact again.

Exactness discipline carries over from ``test_index``: a partial result
must still be the *exact* top-k over the shards that did answer, and a
recovered index must be bit-identical to a never-degraded one.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.retrieval.hamming import hamming_cdist, pack_bits
from repro.serve import HammingIndex, ShardedHammingIndex
from repro.serve.index import ScanResult
from repro.serve.service import Overloaded, RetrievalService, ServiceClosed

N_BITS = 32
K = 10


def random_codes(rng, n, L=N_BITS):
    return rng.integers(0, 2, size=(n, L)).astype(np.uint8)


def ref_topk_masked(Zq, Zb, k, dead_rows=()):
    """Brute-force (distance, id) top-k with ``dead_rows`` excluded."""
    D = hamming_cdist(pack_bits(Zq), pack_bits(Zb)).astype(np.int64)
    key = D * (len(Zb) + 1) + np.arange(len(Zb))
    if len(dead_rows):
        key[:, list(dead_rows)] = np.iinfo(np.int64).max
    order = np.argsort(key, axis=1, kind="stable")[:, :k]
    rows = np.arange(len(Zq))[:, None]
    return order, D[rows, order].astype(np.uint16)


@pytest.fixture()
def problem():
    rng = np.random.default_rng(7)
    Zb = random_codes(rng, 600)
    Zq = random_codes(rng, 8)
    return pack_bits(Zb), pack_bits(Zq), Zb, Zq


def kill_shard(idx, rank):
    proc = idx._procs[rank]
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=5.0)


class TestScanResult:
    def test_tuple_compatible(self, problem):
        """Every existing ``ids, dists = index.search(...)`` call keeps
        working: ScanResult *is* the 2-tuple, with metadata riding on
        attributes."""
        packed, Q, Zb, Zq = problem
        idx = ShardedHammingIndex(packed, N_BITS, 3, mode="thread")
        res = idx.search(Q, K)
        assert isinstance(res, ScanResult)
        ids, dists = res
        assert ids is res.ids and dists is res.dists
        assert res.partial is False
        assert res.coverage == 1.0
        assert res.shards_missed == ()
        rid, rd = ref_topk_masked(Zq, Zb, K)
        assert np.array_equal(ids, rid) and np.array_equal(dists, rd)

    def test_scan_timeout_validation(self, problem):
        packed, *_ = problem
        with pytest.raises(ValueError, match="scan_timeout_s"):
            ShardedHammingIndex(packed, N_BITS, 2, scan_timeout_s=-1.0)


class TestShardDeath:
    def test_killed_shard_yields_partial_then_respawn_restores_exact(
        self, problem
    ):
        """The serve acceptance path: SIGKILL a shard worker; the next
        search returns a *flagged* partial that is exact over the
        surviving shards, the worker is respawned from the retained
        descriptors, and the search after that is full-coverage exact."""
        packed, Q, Zb, Zq = problem
        idx = ShardedHammingIndex(
            packed, N_BITS, 3, mode="process", scan_timeout_s=5.0
        )
        try:
            full = idx.search(Q, K)
            assert not full.partial and idx.shard_respawns == 0

            kill_shard(idx, 1)
            t0 = time.monotonic()
            res = idx.search(Q, K)
            assert time.monotonic() - t0 < 5.0 + 2.0
            assert res.partial is True
            assert res.shards_missed == (1,)
            assert 0.0 < res.coverage < 1.0
            lo = idx._offsets[1]
            hi = lo + idx._shard_rows[1]
            assert res.coverage == (idx.n - (hi - lo)) / idx.n
            # Exact over the shards that answered: the dead shard's id
            # range is simply absent, never wrong.
            rid, rd = ref_topk_masked(Zq, Zb, K, dead_rows=range(lo, hi))
            assert np.array_equal(res.ids, rid)
            assert np.array_equal(res.dists, rd)

            # Healed: full coverage, bit-identical to the pre-kill scan.
            assert idx.shard_respawns == 1
            again = idx.search(Q, K)
            assert again.partial is False and again.coverage == 1.0
            assert np.array_equal(again.ids, full.ids)
            assert np.array_equal(again.dists, full.dists)
        finally:
            idx.close()

    def test_streamed_blocks_survive_respawn(self, problem):
        """The tail shard's streamed ``add`` blocks are replayed into the
        respawned worker — recovery restores *ingest history*, not just
        the construction-time shard."""
        packed, Q, Zb, Zq = problem
        rng = np.random.default_rng(11)
        Z_new = random_codes(rng, 40)
        idx = ShardedHammingIndex(
            packed, N_BITS, 3, mode="process", scan_timeout_s=5.0
        )
        try:
            ids = idx.add(pack_bits(Z_new))
            assert list(ids) == list(range(len(Zb), len(Zb) + 40))
            tail = len(idx._procs) - 1
            kill_shard(idx, tail)
            res = idx.search(Q, K)
            assert res.partial is True and tail in res.shards_missed
            assert idx.shard_respawns == 1
            healed = idx.search(Q, K)
            assert healed.partial is False
            rid, rd = ref_topk_masked(Zq, np.concatenate([Zb, Z_new]), K)
            assert np.array_equal(healed.ids, rid)
            assert np.array_equal(healed.dists, rd)
        finally:
            idx.close()


class TestScanDeadline:
    def test_zero_deadline_flags_partial_process(self, problem):
        """``scan_timeout_s=0`` races the workers and must *flag* what it
        drops — a fast shard may still land (put -> scan -> send can beat
        the poll), so the contract is partiality, not exact coverage."""
        packed, Q, *_ = problem
        big = np.concatenate([packed] * 40)  # scans cost more than poll(0)
        idx = ShardedHammingIndex(big, N_BITS, 3, mode="process", scan_timeout_s=0.0)
        try:
            res = idx.search(Q, K)
            assert res.partial is True
            assert res.coverage < 1.0
            assert len(res.shards_missed) >= 1
            assert res.ids.shape[0] == len(Q)
        finally:
            idx.close()

    def test_zero_deadline_flags_partial_thread(self, problem):
        """Thread mode has no process to respawn, but the deadline and
        the partial flag behave identically."""
        packed, Q, *_ = problem
        big = np.concatenate([packed] * 40)
        idx = ShardedHammingIndex(big, N_BITS, 3, mode="thread", scan_timeout_s=0.0)
        try:
            res = idx.search(Q, K)
            assert res.partial is True
            assert res.coverage < 1.0
            assert idx.shard_respawns == 0
        finally:
            idx.close()

    def test_no_deadline_is_exhaustive(self, problem):
        """Default (no scan_timeout_s): identical to the unsharded scan,
        never partial."""
        packed, Q, Zb, Zq = problem
        flat = HammingIndex.from_codes(packed, N_BITS)
        idx = ShardedHammingIndex(packed, N_BITS, 3, mode="process")
        try:
            fi, fd = flat.search(Q, K)
            res = idx.search(Q, K)
            assert res.partial is False
            assert np.array_equal(res.ids, fi)
            assert np.array_equal(res.dists, fd)
        finally:
            idx.close()


# ------------------------------------------------------------------ service
class _HashModel:
    """Deterministic toy encoder: sign pattern of the first N_BITS dims."""

    compute_dtype = np.float64

    def encode(self, X):
        return (np.asarray(X)[:, :N_BITS] > 0).astype(np.uint8)


class _SlowModel(_HashModel):
    def __init__(self, delay_s):
        self.delay_s = delay_s

    def encode(self, X):
        time.sleep(self.delay_s)
        return super().encode(X)


def make_service(n=400, **kwargs):
    rng = np.random.default_rng(3)
    X_base = rng.standard_normal((n, N_BITS))
    return RetrievalService.from_data(_HashModel(), X_base, k=5, **kwargs), rng


class TestServiceDegradation:
    def test_submit_after_close_raises_service_closed(self):
        svc, rng = make_service()
        svc.close()
        with pytest.raises(ServiceClosed, match="service is closed"):
            svc.submit(rng.standard_normal(N_BITS))
        # Still a RuntimeError for pre-existing guards.
        assert issubclass(ServiceClosed, RuntimeError)

    def test_admission_control_rejects_when_saturated(self):
        rng = np.random.default_rng(3)
        X_base = rng.standard_normal((200, N_BITS))
        svc = RetrievalService(
            _SlowModel(0.2),
            HammingIndex.from_codes(
                pack_bits(_HashModel().encode(X_base)), N_BITS
            ),
            k=5,
            max_wait_ms=0.0,
            max_pending=2,
        )
        try:
            t1 = svc.submit(rng.standard_normal(N_BITS))
            t2 = svc.submit(rng.standard_normal(N_BITS))
            with pytest.raises(Overloaded, match="max_pending=2"):
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    svc.submit(rng.standard_normal(N_BITS))
                    time.sleep(0.01)
            assert svc.stats.snapshot()["n_rejected"] >= 1
            t1.result(10.0)
            t2.result(10.0)
        finally:
            svc.close()

    def test_close_timeout_names_inflight_tickets(self):
        rng = np.random.default_rng(3)
        X_base = rng.standard_normal((200, N_BITS))
        svc = RetrievalService(
            _SlowModel(2.0),
            HammingIndex.from_codes(
                pack_bits(_HashModel().encode(X_base)), N_BITS
            ),
            k=5,
            max_wait_ms=0.0,
        )
        t = svc.submit(rng.standard_normal(N_BITS))
        time.sleep(0.1)  # let the batcher enter the slow encode
        with pytest.raises(TimeoutError, match=r"1 in-flight ticket"):
            svc.close(timeout=0.2)
        # The drain finishes; a retried close succeeds and is idempotent.
        t.result(10.0)
        svc.close()
        svc.close()

    def test_partial_scan_propagates_to_ticket_and_stats(self):
        svc, rng = make_service(
            n_shards=3, shard_mode="process", scan_timeout_s=5.0
        )
        try:
            q = rng.standard_normal(N_BITS)
            t = svc.submit(q)
            t.result(10.0)
            assert t.partial is False and t.coverage == 1.0

            kill_shard(svc.index, 0)
            t = svc.submit(q)
            ids, dists = t.result(30.0)
            assert t.partial is True
            assert 0.0 < t.coverage < 1.0
            assert ids.shape == (5,)
            snap = svc.stats.snapshot()
            assert snap["n_partial"] == 1

            # The index self-healed under the service: next query is full.
            t = svc.submit(q)
            t.result(30.0)
            assert t.partial is False and t.coverage == 1.0
        finally:
            svc.close()
