"""Shared fixtures: small, deterministic workloads."""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.data.synthetic import make_clustered, make_sift_like


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_cloud():
    """(200, 12) clustered float data — generic small workload."""
    return make_clustered(200, 12, n_clusters=4, rng=7)


@pytest.fixture(scope="session")
def sift_cloud():
    """(300, 16) SIFT-like non-negative data."""
    return make_sift_like(300, 16, n_clusters=5, rng=11)


@pytest.fixture()
def small_ba():
    """Fresh 12->6-bit linear BA per test."""
    return BinaryAutoencoder.linear(n_features=12, n_bits=6)


@pytest.fixture()
def fitted_ba(small_cloud):
    """A BA quickly fitted on the small cloud (3 MAC iterations)."""
    from repro.core.mac import MACTrainerBA
    from repro.core.penalty import GeometricSchedule

    ba = BinaryAutoencoder.linear(n_features=12, n_bits=6)
    MACTrainerBA(ba, GeometricSchedule(1e-3, 2.0, 3), seed=0).fit(small_cloud)
    return ba
