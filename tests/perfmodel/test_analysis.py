import numpy as np
import pytest

from repro.perfmodel.analysis import (
    effective_submodels,
    fit_time_constants,
    optimal_machines,
    perfect_speedup_limit,
    scale_invariant_transforms,
)
from repro.perfmodel.speedup import SpeedupParams, global_max, speedup


class TestOptimalMachines:
    def test_matches_dense_scan(self):
        p = SpeedupParams(N=50_000, M=32, e=1, t_wc=1000.0, t_zr=100.0)
        P_opt, S_opt = optimal_machines(p)
        Ps = np.arange(1, 3000)
        S = speedup(Ps, p)
        assert S_opt == pytest.approx(S.max())
        assert speedup(P_opt, p) == pytest.approx(S.max())

    def test_respects_max_P(self):
        p = SpeedupParams(N=10**6, M=32, e=1, t_wc=1000.0, t_zr=100.0)
        P_opt, _ = optimal_machines(p, max_P=50)
        assert P_opt <= 50

    def test_never_exceeds_N(self):
        p = SpeedupParams(N=64, M=8, e=1, t_wc=1.0, t_zr=10.0)
        P_opt, _ = optimal_machines(p)
        assert P_opt <= 64


class TestPerfectSpeedupLimit:
    def test_efficiency_at_limit(self):
        p = SpeedupParams(N=10**6, M=10**6, e=1, t_wc=100.0, t_zr=10.0)
        P_lim = perfect_speedup_limit(p, tolerance=0.05)
        # At the limit, the divisible-case efficiency is exactly 95%.
        from repro.perfmodel.speedup import speedup_divisible

        eff = float(speedup_divisible(P_lim, p)) / P_lim
        assert eff == pytest.approx(0.95, rel=1e-6)

    def test_no_comm_unbounded(self):
        p = SpeedupParams(N=1000, M=4, t_wc=0.0)
        assert perfect_speedup_limit(p) == 1000

    def test_rejects_bad_tolerance(self):
        p = SpeedupParams(N=100, M=4, t_wc=1.0)
        with pytest.raises(ValueError):
            perfect_speedup_limit(p, tolerance=0.0)


class TestEffectiveSubmodels:
    def test_ba_grouping_is_2L(self):
        assert effective_submodels(16, 320) == 32
        assert effective_submodels(64, 128) == 128


class TestInvariances:
    @pytest.mark.parametrize("alpha", [2.0, 4.0])
    def test_speedup_invariant_under_transforms(self, alpha):
        # Section 5.2: the three transformations leave S(P) unchanged.
        base = SpeedupParams(N=10_000, M=16, e=2, t_wr=1.0, t_wc=100.0, t_zr=10.0)
        Ps = np.array([1, 2, 4, 8, 16, 32, 100])
        S0 = speedup(Ps, base)
        for variant in scale_invariant_transforms(base, alpha):
            assert np.allclose(speedup(Ps, variant), S0, rtol=1e-9)

    def test_rejects_bad_alpha(self):
        base = SpeedupParams(N=100, M=4)
        with pytest.raises(ValueError):
            scale_invariant_transforms(base, 0.0)


class TestFitTimeConstants:
    def test_recovers_known_constants(self):
        true = SpeedupParams(N=50_000, M=32, e=1, t_wr=1.0, t_wc=5_000.0, t_zr=150.0)
        Ps = np.array([1, 2, 4, 8, 16, 32, 48, 64, 96, 128])
        measured = speedup(Ps, true)
        fitted = fit_time_constants(Ps, measured, N=true.N, M=true.M, e=true.e)
        assert fitted.t_wc == pytest.approx(true.t_wc, rel=0.05)
        assert fitted.t_zr == pytest.approx(true.t_zr, rel=0.05)

    def test_fits_noisy_measurements(self):
        true = SpeedupParams(N=50_000, M=32, e=1, t_wc=10_000.0, t_zr=200.0)
        Ps = np.array([1, 4, 16, 32, 64, 128])
        rng = np.random.default_rng(0)
        measured = speedup(Ps, true) * (1 + 0.03 * rng.normal(size=len(Ps)))
        fitted = fit_time_constants(Ps, measured, N=true.N, M=true.M, e=true.e)
        # Prediction quality matters more than parameter identity.
        assert np.allclose(speedup(Ps, fitted), speedup(Ps, true), rtol=0.15)

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            fit_time_constants([4], [3.9], N=1000, M=8, e=1)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_time_constants([1, 2], [1.0], N=1000, M=8, e=1)


class TestPresets:
    def test_fig4_constants(self):
        from repro.perfmodel.presets import FIG4_PARAMS

        assert FIG4_PARAMS.rho1 == pytest.approx(0.0025)
        assert FIG4_PARAMS.rho2 == pytest.approx(0.0005)
        assert FIG4_PARAMS.rho == pytest.approx(0.003)

    def test_fig4_max_past_M(self):
        # Fig. 4: maximum occurs at P*_1 > M = 512.
        from repro.perfmodel.presets import FIG4_PARAMS

        P_star, S_star = global_max(FIG4_PARAMS)
        assert P_star > 512
        assert P_star == pytest.approx(np.sqrt(0.0025 * 512 * 10**6))

    def test_cluster_presets(self):
        from repro.perfmodel.presets import cluster_cost_model

        dist = cluster_cost_model("distributed")
        shared = cluster_cost_model("shared")
        assert shared.t_wr < dist.t_wr  # shared-memory machine is faster
        assert shared.t_wc < dist.t_wc

    def test_unknown_preset_raises(self):
        from repro.perfmodel.presets import cluster_cost_model

        with pytest.raises(ValueError):
            cluster_cost_model("quantum")
