"""The analytical speedup model: equation-level checks against the paper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel.speedup import (
    SpeedupParams,
    global_max,
    interval_bounds,
    interval_max,
    speedup,
    speedup_divisible,
    speedup_large_dataset,
    t_w,
    t_z,
    total_time,
)

params_strategy = st.builds(
    SpeedupParams,
    N=st.integers(100, 10**6),
    M=st.integers(1, 256),
    e=st.integers(1, 8),
    t_wr=st.floats(0.1, 10.0),
    # Either exactly free communication or a physically plausible cost:
    # subnormal t_wc (e.g. 1e-308) makes rho ~ 1/t_wc overflow the
    # closed forms to inf even though rho itself is still finite.
    t_wc=st.one_of(st.just(0.0), st.floats(1e-6, 10**4)),
    t_zr=st.floats(0.1, 10**3),
)


class TestRuntimes:
    def test_t_z_formula(self):
        p = SpeedupParams(N=1000, M=8, t_zr=2.0)
        assert t_z(4, p) == pytest.approx(8 * 250 * 2.0)  # eq. (7)

    def test_t_w_formula_divisible(self):
        p = SpeedupParams(N=1000, M=8, e=2, t_wr=1.0, t_wc=50.0)
        # eq. (8): ceil(M/P)(t_wr N/P + t_wc) P e + ceil(M/P) t_wc P
        P = 4
        expected = 2 * (250.0 + 50.0) * 4 * 2 + 2 * 50.0 * 4
        assert t_w(P, p) == pytest.approx(expected)

    def test_t_w_no_comm_at_p1(self):
        p = SpeedupParams(N=1000, M=8, e=2, t_wr=1.0, t_wc=50.0)
        # eq. (10): T_W(1) = M N e t_wr with t_wc = 0.
        assert t_w(1, p) == pytest.approx(8 * 1000 * 2 * 1.0)

    def test_total_time_is_sum(self):
        p = SpeedupParams(N=500, M=4, t_wc=10.0, t_zr=3.0)
        assert total_time(2, p) == pytest.approx(t_w(2, p) + t_z(2, p))

    def test_ceil_effect_when_not_divisible(self):
        # M=5, P=4 -> ceil = 2: same W cost as M=8 under the upper bound.
        p5 = SpeedupParams(N=1000, M=5, t_wc=10.0)
        p8 = SpeedupParams(N=1000, M=8, t_wc=10.0)
        assert t_w(4, p5) == pytest.approx(t_w(4, p8))

    def test_rejects_p_zero(self):
        with pytest.raises(ValueError):
            t_w(0, SpeedupParams(N=10, M=2))


class TestSpeedupIdentities:
    @given(params_strategy, st.integers(2, 300))
    @settings(max_examples=100)
    def test_eq12_equals_time_ratio(self, p, P):
        # The closed form (12) must equal T(1)/T(P) computed from eqs. 7-10.
        # (Eq. 9 holds for P > 1 only: at P = 1 there is no communication.)
        s = speedup(P, p)
        if not np.isfinite(p.rho):
            return
        ceil = -(-p.M // P)
        closed = (p.rho * (p.M / ceil) * P) / (
            p.rho1 * p.M / ceil + p.rho2 * P + P * P / p.N
        )
        assert s == pytest.approx(closed, rel=1e-9)

    @given(params_strategy)
    @settings(max_examples=60)
    def test_s1_is_one(self, p):
        assert speedup(1, p) == pytest.approx(1.0)

    def test_divisible_formula_matches(self):
        # P >= 2: eq. (14) embeds eq. (12)'s convention of charging t_wc
        # uniformly, while the exact T(1) has no communication.
        p = SpeedupParams(N=50_000, M=32, e=1, t_wc=100.0, t_zr=10.0)
        for P in (2, 4, 8, 16, 32):
            assert speedup(P, p) == pytest.approx(
                float(speedup_divisible(P, p)), rel=1e-9
            )

    @given(st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    def test_divisible_speedup_at_most_P(self, P):
        # Eq. (14): S(P) <= P whenever P divides M.
        p = SpeedupParams(N=10_000, M=64, e=2, t_wc=10.0, t_zr=5.0)
        assert speedup(P, p) <= P + 1e-9

    def test_rho_constants(self):
        p = SpeedupParams(N=1, M=1, e=3, t_wr=2.0, t_wc=4.0, t_zr=8.0)
        assert p.rho1 == pytest.approx(8.0 / (4 * 4.0))
        assert p.rho2 == pytest.approx(3 * 2.0 / (4 * 4.0))
        assert p.rho == pytest.approx(p.rho1 + p.rho2)

    def test_no_comm_perfect_speedup_divisible(self):
        p = SpeedupParams(N=10_000, M=16, t_wc=0.0)
        for P in (2, 4, 8, 16):
            assert speedup(P, p) == pytest.approx(P)


class TestTheoremA1:
    """S(M/k) dominates everything before it (appendix A, theorem A.1)."""

    @pytest.mark.parametrize(
        "p",
        [
            SpeedupParams(N=50_000, M=32, e=1, t_wc=100.0, t_zr=1.0),
            SpeedupParams(N=50_000, M=24, e=8, t_wc=1000.0, t_zr=100.0),
            SpeedupParams(N=5_000, M=12, e=2, t_wc=10.0, t_zr=10.0),
        ],
    )
    def test_interval_starts_dominate(self, p):
        for k in (1, 2, 3, 4):
            if p.M % k:
                continue
            boundary = p.M // k
            if boundary < 2:
                continue
            S_b = speedup(boundary, p)
            before = np.arange(1, boundary)
            assert (speedup(before, p) <= S_b + 1e-9).all()

    def test_s_star_k_decreasing_in_k(self):
        p = SpeedupParams(N=50_000, M=32, e=1, t_wc=100.0, t_zr=10.0)
        stars = [interval_max(k, p)[1] for k in range(1, 8)]
        assert all(a > b for a, b in zip(stars, stars[1:]))

    def test_interval_bounds_partition(self):
        bounds = interval_bounds(6)
        assert bounds[0][0] == 1.0
        assert bounds[-1] == (6.0, np.inf)
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == pytest.approx(c)

    def test_interval_max_rejects_bad_k(self):
        p = SpeedupParams(N=100, M=4)
        with pytest.raises(ValueError):
            interval_max(5, p)


class TestGlobalMax:
    def test_matches_dense_scan(self):
        p = SpeedupParams(N=50_000, M=32, e=1, t_wc=1000.0, t_zr=100.0)
        P_star, S_star = global_max(p)
        Ps = np.arange(1, 4000)
        S = speedup(Ps, p)
        # The analytic max bounds the integer-grid max and is near it.
        assert S_star >= S.max() - 1e-9
        assert abs(S_star - S.max()) / S_star < 0.01

    def test_large_N_max_exceeds_M(self):
        # Section A.2: with M < rho1 N the max is S*_1 > M at P*_1 > M.
        p = SpeedupParams(N=10**6, M=32, e=1, t_wc=1000.0, t_zr=100.0)
        P_star, S_star = global_max(p)
        assert P_star > p.M and S_star > p.M

    def test_small_N_max_at_M(self):
        # M >= rho1 N: maximum at P = M with S* <= M.
        p = SpeedupParams(N=100, M=64, e=1, t_wc=1000.0, t_zr=10.0)
        P_star, S_star = global_max(p)
        assert P_star == p.M and S_star <= p.M

    def test_no_comm_unbounded(self):
        p = SpeedupParams(N=1000, M=8, e=1, t_wr=1.0, t_wc=0.0, t_zr=3.0)
        P_star, S_star = global_max(p)
        assert np.isinf(P_star)
        # Limit: (rho/rho2) M = M (e t_wr + t_zr)/(e t_wr) = 8 * 4 = 32.
        assert S_star == pytest.approx(32.0)

    def test_p_star_formula(self):
        p = SpeedupParams(N=10**6, M=32, e=1, t_wc=1000.0, t_zr=100.0)
        P_star, _ = global_max(p)
        assert P_star == pytest.approx(np.sqrt(p.rho1 * p.M * p.N))


class TestLargeDataset:
    def test_harmonic_mean_form(self):
        # Eq. (20): S ~= rho/(rho1/P + rho2/M), between M and P.
        p = SpeedupParams(N=10**8, M=32, e=1, t_wc=10_000.0, t_zr=40.0)
        for P in (64, 100, 128):
            approx = float(speedup_large_dataset(P, p))
            exact = float(speedup(P, p))
            assert approx == pytest.approx(exact, rel=0.05)
            assert min(P, p.M) <= approx <= max(P, p.M)

    def test_divisible_approaches_P(self):
        p = SpeedupParams(N=10**8, M=128, e=1, t_wc=10_000.0, t_zr=40.0)
        assert speedup(64, p) == pytest.approx(64, rel=0.01)
