"""Z-step solver correctness: the binary proximal operator of section 3.1."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoencoder.zstep import (
    MAX_ENUM_BITS,
    zstep,
    zstep_alternate,
    zstep_enumerate,
    zstep_objective,
    zstep_relaxed,
)


def random_problem(n=20, D=6, L=4, mu=1.0, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, D))
    B = rng.normal(size=(D, L))
    c = rng.normal(size=D)
    H = rng.integers(0, 2, size=(n, L)).astype(np.uint8)
    return X, B, c, H, mu


def brute_force(X, B, c, H, mu):
    """Reference: per-point exhaustive search via explicit python loops."""
    n, L = len(X), B.shape[1]
    best = np.zeros((n, L), dtype=np.uint8)
    for i in range(n):
        best_val = np.inf
        for bits in itertools.product((0, 1), repeat=L):
            z = np.array(bits, dtype=np.float64)
            val = np.sum((X[i] - B @ z - c) ** 2) + mu * np.sum((z - H[i]) ** 2)
            if val < best_val:
                best_val = val
                best[i] = bits
    return best


class TestObjective:
    def test_matches_definition(self):
        X, B, c, H, mu = random_problem()
        Z = np.random.default_rng(1).integers(0, 2, size=H.shape).astype(np.uint8)
        vals = zstep_objective(X, B, c, H, mu, Z)
        i = 3
        z = Z[i].astype(float)
        expected = np.sum((X[i] - B @ z - c) ** 2) + mu * np.sum((z - H[i]) ** 2)
        assert vals[i] == pytest.approx(expected)

    def test_zero_when_perfect(self):
        rng = np.random.default_rng(2)
        B = rng.normal(size=(4, 3))
        c = rng.normal(size=4)
        Z = rng.integers(0, 2, size=(5, 3)).astype(np.uint8)
        X = Z.astype(float) @ B.T + c
        assert np.allclose(zstep_objective(X, B, c, Z, 1.0, Z), 0.0)


class TestEnumerate:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        X, B, c, H, mu = random_problem(n=12, L=4, mu=0.7, seed=seed)
        Z = zstep_enumerate(X, B, c, H, mu)
        ref = brute_force(X, B, c, H, mu)
        # Optimal objective must match (argmin may tie).
        assert np.allclose(
            zstep_objective(X, B, c, H, mu, Z), zstep_objective(X, B, c, H, mu, ref)
        )

    def test_chunking_equivalence(self):
        X, B, c, H, mu = random_problem(n=30)
        a = zstep_enumerate(X, B, c, H, mu, chunk=7)
        b = zstep_enumerate(X, B, c, H, mu, chunk=10_000)
        assert np.array_equal(a, b)

    def test_huge_mu_returns_h(self):
        X, B, c, H, _ = random_problem()
        Z = zstep_enumerate(X, B, c, H, mu=1e12)
        assert np.array_equal(Z, H)

    def test_mu_zero_ignores_h(self):
        # With mu=0 the solution depends only on reconstruction.
        X, B, c, H, _ = random_problem(seed=3)
        H2 = 1 - H
        a = zstep_enumerate(X, B, c, H, 0.0)
        b = zstep_enumerate(X, B, c, H2, 0.0)
        assert np.allclose(
            zstep_objective(X, B, c, H, 0.0, a), zstep_objective(X, B, c, H, 0.0, b)
        )

    def test_refuses_large_L(self):
        X, B, c, H, mu = random_problem(L=4)
        B_big = np.random.default_rng(0).normal(size=(6, 20))
        H_big = np.zeros((len(X), 20), dtype=np.uint8)
        with pytest.raises(ValueError, match="enumeration"):
            zstep_enumerate(X, B_big, c[:6], H_big, mu)

    def test_rejects_negative_mu(self):
        X, B, c, H, _ = random_problem()
        with pytest.raises(ValueError):
            zstep_enumerate(X, B, c, H, -1.0)


class TestAlternate:
    def test_never_increases_objective(self):
        X, B, c, H, mu = random_problem(n=25, L=8, seed=4)
        Z0 = np.random.default_rng(5).integers(0, 2, size=H.shape).astype(np.uint8)
        before = zstep_objective(X, B, c, H, mu, Z0)
        Z = zstep_alternate(X, B, c, H, mu, Z0, max_sweeps=5)
        after = zstep_objective(X, B, c, H, mu, Z)
        assert (after <= before + 1e-9).all()

    @given(st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_monotone_property(self, seed):
        X, B, c, H, mu = random_problem(n=8, L=5, mu=0.5, seed=seed)
        Z0 = np.random.default_rng(seed + 100).integers(0, 2, size=H.shape).astype(np.uint8)
        before = zstep_objective(X, B, c, H, mu, Z0)
        Z1 = zstep_alternate(X, B, c, H, mu, Z0, max_sweeps=1)
        assert (zstep_objective(X, B, c, H, mu, Z1) <= before + 1e-9).all()

    def test_fixed_point_of_optimum(self):
        # Starting from the global optimum, alternating must not move.
        X, B, c, H, mu = random_problem(n=10, L=4, seed=6)
        Z_opt = zstep_enumerate(X, B, c, H, mu)
        Z = zstep_alternate(X, B, c, H, mu, Z_opt, max_sweeps=3)
        assert np.allclose(
            zstep_objective(X, B, c, H, mu, Z),
            zstep_objective(X, B, c, H, mu, Z_opt),
        )

    def test_close_to_exact_on_small_problems(self):
        # Local minima exist, but with the relaxed init the gap is small.
        X, B, c, H, mu = random_problem(n=40, L=6, mu=1.0, seed=7)
        exact = zstep_objective(X, B, c, H, mu, zstep_enumerate(X, B, c, H, mu)).sum()
        alt = zstep_objective(X, B, c, H, mu, zstep_alternate(X, B, c, H, mu)).sum()
        assert alt <= exact * 1.15 + 1e-9

    def test_rejects_bad_sweeps(self):
        X, B, c, H, mu = random_problem()
        with pytest.raises(ValueError):
            zstep_alternate(X, B, c, H, mu, max_sweeps=0)


class TestRelaxed:
    def test_binary_output(self):
        X, B, c, H, mu = random_problem()
        Z = zstep_relaxed(X, B, c, H, mu)
        assert set(np.unique(Z)) <= {0, 1}

    def test_huge_mu_returns_h(self):
        X, B, c, H, _ = random_problem()
        assert np.array_equal(zstep_relaxed(X, B, c, H, 1e12), H)

    def test_mu_zero_with_singular_decoder(self):
        # Rank-deficient B at mu=0 exercises the pinv fallback.
        X = np.random.default_rng(0).normal(size=(5, 4))
        B = np.zeros((4, 3))
        Z = zstep_relaxed(X, B, np.zeros(4), np.zeros((5, 3), dtype=np.uint8), 0.0)
        assert Z.shape == (5, 3)


def dyadic_problem(seed, dtype, n=12, D=6, L=5):
    """Inputs on a dyadic grid (multiples of 1/4, magnitude <= 2).

    Every intermediate the solvers form — Gram entries, linear terms,
    per-bit deltas — is then a small multiple of 1/16, exactly
    representable in float32 and float64 alike. Both impls therefore
    compute *exactly* the same deltas and scores, so bit-parity of the
    stacked rewrites is a theorem on this grid, not a lucky draw.
    """
    rng = np.random.default_rng(seed)

    def grid(shape):
        return (rng.integers(-8, 9, size=shape) * 0.25).astype(dtype)

    X, B, c = grid((n, D)), grid((D, L)), grid(D)
    H = rng.integers(0, 2, size=(n, L)).astype(np.uint8)
    Z0 = rng.integers(0, 2, size=(n, L)).astype(np.uint8)
    return X, B, c, H, 0.5, Z0


class TestStackedParity:
    """The ``impl="stacked"`` rewrites are bit-identical to the legacy
    formulations — the contract the engines' cross-backend conformance
    relies on (a Z step must not depend on which kernel ran it)."""

    @given(seed=st.integers(0, 10_000),
           dtype=st.sampled_from([np.float32, np.float64]))
    @settings(max_examples=25, deadline=None)
    def test_alternate_parity_dyadic(self, seed, dtype):
        X, B, c, H, mu, Z0 = dyadic_problem(seed, dtype)
        legacy = zstep_alternate(X, B, c, H, mu, Z0, impl="legacy")
        stacked = zstep_alternate(X, B, c, H, mu, Z0, impl="stacked")
        assert np.array_equal(legacy, stacked)

    @given(seed=st.integers(0, 10_000),
           dtype=st.sampled_from([np.float32, np.float64]))
    @settings(max_examples=25, deadline=None)
    def test_enumerate_parity_dyadic(self, seed, dtype):
        X, B, c, H, mu, _ = dyadic_problem(seed, dtype)
        legacy = zstep_enumerate(X, B, c, H, mu, impl="legacy")
        stacked = zstep_enumerate(X, B, c, H, mu, impl="stacked")
        assert np.array_equal(legacy, stacked)

    @given(seed=st.integers(0, 10_000),
           dtype=st.sampled_from([np.float32, np.float64]))
    @settings(max_examples=25, deadline=None)
    def test_relaxed_parity_dyadic(self, seed, dtype):
        X, B, c, H, mu, _ = dyadic_problem(seed, dtype)
        legacy = zstep_relaxed(X, B, c, H, mu, impl="legacy")
        stacked = zstep_relaxed(X, B, c, H, mu, impl="stacked")
        assert np.array_equal(legacy, stacked)

    @pytest.mark.parametrize("seed", range(4))
    def test_alternate_parity_continuous(self, seed):
        # Off the grid too: generic gaussian inputs never land a per-bit
        # delta close enough to the flip threshold for the two rewrites'
        # rounding to disagree.
        X, B, c, H, mu = random_problem(n=30, D=8, L=6, mu=0.7, seed=seed)
        Z0 = np.random.default_rng(seed + 50).integers(0, 2, size=H.shape)
        legacy = zstep_alternate(X, B, c, H, mu, Z0.astype(np.uint8), impl="legacy")
        stacked = zstep_alternate(X, B, c, H, mu, Z0.astype(np.uint8), impl="stacked")
        assert np.array_equal(legacy, stacked)

    def test_cache_keyed_by_content_not_identity(self):
        # Mutating the decoder between calls must never serve stale shared
        # work: the caches key on the decoder's bytes, not its object id.
        X, B, c, H, mu, Z0 = dyadic_problem(11, np.float64)
        zstep_alternate(X, B, c, H, mu, Z0, impl="stacked")  # warm caches on B
        zstep_enumerate(X, B, c, H, mu, impl="stacked")
        B2 = B.copy()
        B2[0, 0] += 0.25
        for fn, kwargs in [
            (zstep_alternate, {"Z0": Z0}),
            (zstep_enumerate, {}),
            (zstep_relaxed, {}),
        ]:
            fresh_legacy = fn(X, B2, c, H, mu, impl="legacy", **kwargs)
            fresh_stacked = fn(X, B2, c, H, mu, impl="stacked", **kwargs)
            assert np.array_equal(fresh_legacy, fresh_stacked)

    def test_unknown_impl_raises(self):
        X, B, c, H, mu = random_problem()
        with pytest.raises(ValueError, match="impl"):
            zstep_alternate(X, B, c, H, mu, impl="vectorised")
        with pytest.raises(ValueError, match="impl"):
            zstep_enumerate(X, B, c, H, mu, impl="vectorised")
        with pytest.raises(ValueError, match="impl"):
            zstep_relaxed(X, B, c, H, mu, impl="vectorised")


class TestDispatcher:
    def test_auto_enumerates_small(self):
        X, B, c, H, mu = random_problem(L=4)
        assert np.array_equal(
            zstep(X, B, c, H, mu, method="auto", max_enum_bits=4),
            zstep_enumerate(X, B, c, H, mu),
        )

    def test_auto_alternates_large(self):
        X, B, c, H, mu = random_problem(L=4)
        Z = zstep(X, B, c, H, mu, method="auto", max_enum_bits=2)
        # Must still be a valid, non-worsening solution vs the relaxed init.
        init = zstep_relaxed(X, B, c, H, mu)
        assert (
            zstep_objective(X, B, c, H, mu, Z)
            <= zstep_objective(X, B, c, H, mu, init) + 1e-9
        ).all()

    def test_default_cutoff_is_enum_limit(self):
        # Regression: the dispatcher's default cutoff once sat at 12 bits
        # while zstep_enumerate allowed 16, silently switching the paper's
        # L in (12, 16] settings to the inexact alternating solver. The
        # default must track the enumeration limit itself.
        import inspect

        sig = inspect.signature(zstep)
        assert sig.parameters["max_enum_bits"].default == MAX_ENUM_BITS
        assert MAX_ENUM_BITS == 16

    def test_auto_enumerates_at_the_limit(self):
        # L == MAX_ENUM_BITS must dispatch to exact enumeration...
        X, B, c, H, mu = random_problem(n=4, D=5, L=MAX_ENUM_BITS, seed=8)
        assert np.array_equal(
            zstep(X, B, c, H, mu, method="auto"),
            zstep_enumerate(X, B, c, H, mu),
        )

    def test_auto_alternates_past_the_limit(self):
        # ...and L == MAX_ENUM_BITS + 1 must fall back to alternating
        # (enumeration would refuse) without raising.
        L = MAX_ENUM_BITS + 1
        X, B, c, H, mu = random_problem(n=4, D=5, L=L, seed=9)
        assert np.array_equal(
            zstep(X, B, c, H, mu, method="auto"),
            zstep_alternate(X, B, c, H, mu),
        )

    def test_unknown_method_raises(self):
        X, B, c, H, mu = random_problem()
        with pytest.raises(ValueError):
            zstep(X, B, c, H, mu, method="quantum")
