import numpy as np
import pytest

from repro.autoencoder.decoder import LinearDecoder
from repro.optim.sgd import SGDState


def code_problem(n=100, L=5, D=8, seed=0):
    rng = np.random.default_rng(seed)
    Z = rng.integers(0, 2, size=(n, L)).astype(np.uint8)
    B = rng.normal(size=(D, L))
    c = rng.normal(size=D)
    X = Z.astype(float) @ B.T + c
    return Z, X, B, c


class TestLinearDecoder:
    def test_decode_from_uint8(self):
        dec = LinearDecoder(3, 2)
        dec.B = np.ones((2, 3))
        Z = np.array([[1, 0, 1]], dtype=np.uint8)
        assert np.allclose(dec.decode(Z), [[2.0, 2.0]])

    def test_fit_lstsq_recovers(self):
        Z, X, B, c = code_problem()
        dec = LinearDecoder(5, 8).fit_lstsq(Z, X)
        assert np.allclose(dec.B, B, atol=1e-8)
        assert np.allclose(dec.c, c, atol=1e-8)

    def test_fit_rows_sgd_only_touches_rows(self):
        Z, X, _, _ = code_problem()
        dec = LinearDecoder(5, 8)
        rows = np.array([2, 5])
        B_before = dec.B.copy()
        dec.fit_rows_sgd(rows, Z, X[:, rows], SGDState(), rng=0)
        touched = np.zeros(8, dtype=bool)
        touched[rows] = True
        assert not np.array_equal(dec.B[touched], B_before[touched])
        assert np.array_equal(dec.B[~touched], B_before[~touched])

    def test_row_groups_cover_decoder_exactly(self):
        # Fitting all groups by SGD approaches the exact fit.
        Z, X, B, c = code_problem(n=300, seed=1)
        dec = LinearDecoder(5, 8)
        groups = np.array_split(np.arange(8), 4)
        for rows in groups:
            state = SGDState()
            for _ in range(60):
                dec.fit_rows_sgd(rows, Z, X[:, rows], state, batch_size=32, rng=0)
        resid = X - dec.decode(Z)
        assert (resid**2).mean() < 0.05 * (X**2).mean()

    def test_row_params_roundtrip(self):
        dec = LinearDecoder(3, 4)
        rows = np.array([1, 3])
        theta = np.arange(8, dtype=float)
        dec.set_row_params(rows, theta)
        assert np.array_equal(dec.row_params(rows), theta)

    def test_set_row_params_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            LinearDecoder(3, 4).set_row_params(np.array([0]), np.zeros(3))

    def test_copy_is_deep(self):
        dec = LinearDecoder(2, 2)
        cp = dec.copy()
        cp.B[0, 0] = 5.0
        assert dec.B[0, 0] == 0.0
