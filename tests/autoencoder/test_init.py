import numpy as np
import pytest

from repro.autoencoder.init import init_codes_pca, init_codes_random


class TestPCAInit:
    def test_shapes_and_binary(self, small_cloud):
        Z, h = init_codes_pca(small_cloud, 5, rng=0)
        assert Z.shape == (len(small_cloud), 5)
        assert set(np.unique(Z)) <= {0, 1}

    def test_subset_fit(self, small_cloud):
        Z, h = init_codes_pca(small_cloud, 4, subset=50, rng=0)
        assert Z.shape == (len(small_cloud), 4)

    def test_returned_hash_consistent(self, small_cloud):
        Z, h = init_codes_pca(small_cloud, 4, rng=0)
        assert np.array_equal(h.encode(small_cloud), Z)

    def test_codes_informative(self, small_cloud):
        # PCA bits should not be constant on clustered data.
        Z, _ = init_codes_pca(small_cloud, 3, rng=0)
        assert (Z.mean(axis=0) > 0.02).all() and (Z.mean(axis=0) < 0.98).all()


class TestRandomInit:
    def test_shape(self):
        Z = init_codes_random(30, 7, rng=0)
        assert Z.shape == (30, 7) and Z.dtype == np.uint8

    def test_roughly_balanced(self):
        Z = init_codes_random(5000, 4, rng=0)
        assert abs(Z.mean() - 0.5) < 0.05

    def test_reproducible(self):
        assert np.array_equal(init_codes_random(10, 3, rng=5), init_codes_random(10, 3, rng=5))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            init_codes_random(0, 3)
