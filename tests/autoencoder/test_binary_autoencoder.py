import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.decoder import LinearDecoder
from repro.autoencoder.encoder import LinearEncoder


class TestConstruction:
    def test_linear_factory(self):
        ba = BinaryAutoencoder.linear(10, 4)
        assert ba.n_bits == 4
        assert ba.encoder.n_features == 10
        assert ba.decoder.n_outputs == 10

    def test_rbf_factory(self):
        X = np.random.default_rng(0).normal(size=(50, 6))
        ba = BinaryAutoencoder.rbf(X, n_centres=10, n_bits=4, rng=0)
        assert ba.encoder.n_features == 10
        assert ba.decoder.n_outputs == 6

    def test_rejects_bit_mismatch(self):
        with pytest.raises(ValueError, match="bits"):
            BinaryAutoencoder(LinearEncoder(5, 3), LinearDecoder(4, 5))


class TestObjectives:
    def test_e_ba_definition(self, small_cloud):
        ba = BinaryAutoencoder.linear(12, 6)
        rng = np.random.default_rng(0)
        ba.encoder.A = rng.normal(size=ba.encoder.A.shape)
        ba.decoder.B = rng.normal(size=ba.decoder.B.shape)
        R = small_cloud - ba.reconstruct(small_cloud)
        assert ba.e_ba(small_cloud) == pytest.approx(float((R * R).sum()))

    def test_e_q_reduces_to_e_ba_at_constraints(self, small_cloud):
        # When Z = h(X) the penalty term vanishes and E_Q = E_BA.
        ba = BinaryAutoencoder.linear(12, 6)
        rng = np.random.default_rng(1)
        ba.encoder.A = rng.normal(size=ba.encoder.A.shape)
        ba.decoder.B = rng.normal(size=ba.decoder.B.shape)
        Z = ba.encode(small_cloud)
        assert ba.e_q(small_cloud, Z, mu=123.0) == pytest.approx(ba.e_ba(small_cloud))

    def test_e_q_increases_with_mu_when_violated(self, small_cloud):
        ba = BinaryAutoencoder.linear(12, 6)
        rng = np.random.default_rng(2)
        ba.encoder.A = rng.normal(size=ba.encoder.A.shape)
        Z = 1 - ba.encode(small_cloud)  # fully violated
        assert ba.e_q(small_cloud, Z, 2.0) > ba.e_q(small_cloud, Z, 1.0)

    def test_e_q_rejects_negative_mu(self, small_cloud):
        ba = BinaryAutoencoder.linear(12, 6)
        Z = ba.encode(small_cloud)
        with pytest.raises(ValueError):
            ba.e_q(small_cloud, Z, -1.0)

    def test_constraint_violation_count(self, small_cloud):
        ba = BinaryAutoencoder.linear(12, 6)
        Z = ba.encode(small_cloud)
        assert ba.constraint_violation(small_cloud, Z) == 0
        Z2 = Z.copy()
        Z2[0, 0] ^= 1
        Z2[3, 2] ^= 1
        assert ba.constraint_violation(small_cloud, Z2) == 2


class TestRoundTrip:
    def test_encode_decode_shapes(self, small_cloud):
        ba = BinaryAutoencoder.linear(12, 6)
        Z = ba.encode(small_cloud)
        assert Z.shape == (len(small_cloud), 6)
        assert ba.decode(Z).shape == small_cloud.shape

    def test_perfectly_encodable_data(self):
        # Data generated from binary codes must be exactly reconstructible
        # once (h, f) match the generative model.
        rng = np.random.default_rng(0)
        L, D = 4, 6
        B = rng.normal(size=(D, L))
        Z = rng.integers(0, 2, size=(100, L)).astype(np.uint8)
        X = Z.astype(float) @ B.T
        ba = BinaryAutoencoder.linear(D, L)
        ba.decoder.B = B.copy()
        # An encoder that outputs exactly Z gives zero nested error.
        ba.encoder.A = np.zeros((L, D))
        assert ba.e_ba(X) > 0  # trivial encoder: all-ones codes
        # With the true codes, E_Q at the constraint is 0 in the f-term.
        assert np.allclose(
            ba.e_q(X, Z, 0.0), 0.0
        )

    def test_copy_independent(self):
        ba = BinaryAutoencoder.linear(5, 3)
        cp = ba.copy()
        cp.encoder.A[0, 0] = 7.0
        cp.decoder.B[0, 0] = 7.0
        assert ba.encoder.A[0, 0] == 0.0 and ba.decoder.B[0, 0] == 0.0
