import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.distributed.partition import Shard
from repro.optim.sgd import SGDState


@pytest.fixture()
def shard(small_cloud):
    ba = BinaryAutoencoder.linear(12, 6)
    adapter = BAAdapter(ba)
    # Learnable codes: thresholded random linear projections of the data.
    w = np.random.default_rng(0).normal(size=(12, 6))
    Z = (small_cloud @ w >= 0).astype(np.uint8)
    s = Shard(
        X=small_cloud.copy(),
        F=adapter.features(small_cloud),
        Z=Z,
        indices=np.arange(len(small_cloud)),
    )
    return adapter, s


class TestSpecs:
    def test_default_grouping_is_2L(self):
        ba = BinaryAutoencoder.linear(20, 8)
        adapter = BAAdapter(ba)
        specs = adapter.submodel_specs()
        assert len(specs) == 16  # M = 2L (section 5.4)
        assert sum(s.kind == "enc" for s in specs) == 8
        assert sum(s.kind == "dec" for s in specs) == 8

    def test_decoder_groups_cover_all_rows(self):
        ba = BinaryAutoencoder.linear(20, 8)
        adapter = BAAdapter(ba, n_decoder_groups=3)
        rows = sorted(
            r for s in adapter.submodel_specs() if s.kind == "dec" for r in s.index
        )
        assert rows == list(range(20))

    def test_sids_dense(self):
        adapter = BAAdapter(BinaryAutoencoder.linear(10, 4))
        sids = [s.sid for s in adapter.submodel_specs()]
        assert sids == list(range(len(sids)))

    def test_rejects_bad_grouping(self):
        with pytest.raises(ValueError):
            BAAdapter(BinaryAutoencoder.linear(10, 4), n_decoder_groups=11)


class TestParams:
    def test_roundtrip_all_specs(self):
        ba = BinaryAutoencoder.linear(10, 4)
        rng = np.random.default_rng(0)
        ba.encoder.A = rng.normal(size=ba.encoder.A.shape)
        ba.decoder.B = rng.normal(size=ba.decoder.B.shape)
        adapter = BAAdapter(ba)
        for spec in adapter.submodel_specs():
            theta = adapter.get_params(spec)
            adapter.set_params(spec, theta * 2.0)
            assert np.allclose(adapter.get_params(spec), theta * 2.0)

    def test_total_params_cover_model(self):
        ba = BinaryAutoencoder.linear(10, 4)
        adapter = BAAdapter(ba)
        total = sum(len(adapter.get_params(s)) for s in adapter.submodel_specs())
        # encoder: L*(D+1); decoder: D*(L+1).
        assert total == 4 * 11 + 10 * 5


class TestWUpdate:
    def test_does_not_touch_model(self, shard):
        adapter, s = shard
        spec = adapter.submodel_specs()[0]
        theta0 = adapter.get_params(spec)
        adapter.w_update(spec, theta0.copy(), SGDState(), s, 0.0,
                         batch_size=32, shuffle=True, rng=np.random.default_rng(0))
        assert np.array_equal(adapter.get_params(spec), theta0)

    def test_enc_update_reduces_hinge(self, shard):
        adapter, s = shard
        spec = adapter.submodel_specs()[0]
        from repro.optim.svm import LinearSVM

        theta = adapter.get_params(spec)
        state = SGDState()
        for _ in range(20):
            theta = adapter.w_update(spec, theta, state, s, 0.0,
                                     batch_size=32, shuffle=True,
                                     rng=np.random.default_rng(1))
        svm = LinearSVM(12)
        svm.set_params(theta)
        y = 2.0 * s.Z[:, 0].astype(float) - 1.0
        svm0 = LinearSVM(12)
        assert svm.objective(s.F, y) < svm0.objective(s.F, y)

    def test_dec_update_reduces_mse(self, shard):
        adapter, s = shard
        spec = next(sp for sp in adapter.submodel_specs() if sp.kind == "dec")
        theta = adapter.get_params(spec)
        state = SGDState()
        rows = np.asarray(spec.index)
        from repro.optim.linreg import LinearRegression

        def mse(th):
            reg = LinearRegression(6, len(rows))
            reg.set_params(th)
            return reg.objective(s.Z.astype(float), s.X[:, rows])

        before = mse(theta)
        for _ in range(20):
            theta = adapter.w_update(spec, theta, state, s, 0.0,
                                     batch_size=32, shuffle=True,
                                     rng=np.random.default_rng(2))
        assert mse(theta) < before


class TestZUpdateAndObjectives:
    def test_z_update_never_increases_e_q(self, shard):
        adapter, s = shard
        before = adapter.e_q_shard(s, mu=0.5)
        adapter.z_update(s, mu=0.5)
        assert adapter.e_q_shard(s, mu=0.5) <= before + 1e-9

    def test_z_update_returns_change_count(self, shard):
        adapter, s = shard
        Z_before = s.Z.copy()
        changes = adapter.z_update(s, mu=0.5)
        assert changes == int((s.Z != Z_before).sum())

    def test_e_q_shard_matches_model(self, shard):
        adapter, s = shard
        assert adapter.e_q_shard(s, 0.7) == pytest.approx(
            adapter.model.e_q(s.X, s.Z, 0.7)
        )

    def test_e_ba_shard_matches_model(self, shard):
        adapter, s = shard
        assert adapter.e_ba_shard(s) == pytest.approx(adapter.model.e_ba(s.X))

    def test_violations_shard(self, shard):
        adapter, s = shard
        s.Z = adapter.init_codes(s.F)
        assert adapter.violations_shard(s) == 0
        s.Z[0, 0] ^= 1
        assert adapter.violations_shard(s) == 1

    def test_init_codes_match_encode(self, shard):
        adapter, s = shard
        assert np.array_equal(adapter.init_codes(s.F), adapter.model.encode(s.X))
