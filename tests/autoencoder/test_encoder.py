import numpy as np
import pytest

from repro.autoencoder.encoder import LinearEncoder, RBFEncoder, gaussian_kernel_features
from repro.optim.sgd import SGDState


class TestGaussianKernelFeatures:
    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(0)
        K = gaussian_kernel_features(rng.normal(size=(20, 4)), rng.normal(size=(5, 4)), 2.0)
        assert (K > 0).all() and (K <= 1).all()

    def test_self_kernel_is_one(self):
        C = np.random.default_rng(1).normal(size=(4, 3))
        K = gaussian_kernel_features(C, C, 1.5)
        assert np.allclose(np.diag(K), 1.0)

    def test_quantised_storage(self):
        rng = np.random.default_rng(2)
        K = gaussian_kernel_features(rng.normal(size=(10, 3)), rng.normal(size=(4, 3)), 1.0,
                                     quantize=True)
        assert K.dtype == np.uint8

    def test_wider_sigma_larger_values(self):
        rng = np.random.default_rng(3)
        X, C = rng.normal(size=(10, 3)), rng.normal(size=(4, 3))
        narrow = gaussian_kernel_features(X, C, 0.5)
        wide = gaussian_kernel_features(X, C, 5.0)
        assert (wide >= narrow - 1e-12).all()

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel_features(np.zeros((2, 2)), np.zeros((2, 2)), 0.0)


class TestLinearEncoder:
    def test_encode_step_convention(self):
        enc = LinearEncoder(2, 1)
        enc.A[0] = [1.0, 0.0]
        Z = enc.encode(np.array([[0.0, 5.0], [1.0, 0.0], [-1.0, 0.0]]))
        # score 0 -> 1 (step(0) = 1), positive -> 1, negative -> 0.
        assert Z.ravel().tolist() == [1, 1, 0]

    def test_fit_learns_separable_bits(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 5))
        w = rng.normal(size=(5, 3))
        Z = (X @ w >= 0).astype(np.uint8)
        enc = LinearEncoder(5, 3).fit(X, Z, epochs=20, rng=0)
        assert (enc.encode(X) == Z).mean() > 0.95

    def test_fit_bit_updates_single_row(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 4))
        z = rng.integers(0, 2, size=50).astype(np.uint8)
        enc = LinearEncoder(4, 3)
        A_before = enc.A.copy()
        enc.fit_bit(1, X, z, SGDState(), rng=0)
        assert not np.array_equal(enc.A[1], A_before[1])
        assert np.array_equal(enc.A[0], A_before[0])
        assert np.array_equal(enc.A[2], A_before[2])

    def test_fit_bit_rejects_bad_index(self):
        enc = LinearEncoder(4, 3)
        with pytest.raises(IndexError):
            enc.fit_bit(3, np.zeros((2, 4)), np.zeros(2), SGDState())

    def test_bit_params_roundtrip(self):
        enc = LinearEncoder(4, 2)
        theta = np.arange(5, dtype=float)
        enc.set_bit_params(1, theta)
        assert np.array_equal(enc.bit_params(1), theta)

    def test_copy_is_deep(self):
        enc = LinearEncoder(3, 2)
        cp = enc.copy()
        cp.A[0, 0] = 99.0
        assert enc.A[0, 0] == 0.0


class TestRBFEncoder:
    def test_from_data_centres_subset(self):
        X = np.random.default_rng(0).normal(size=(50, 4))
        enc = RBFEncoder.from_data(X, n_centres=10, n_bits=3, rng=0)
        assert enc.centres.shape == (10, 4)
        assert enc.n_features == 10  # trains on kernel features

    def test_sigma_median_heuristic_positive(self):
        X = np.random.default_rng(1).normal(size=(30, 4))
        enc = RBFEncoder.from_data(X, 8, 2, rng=0)
        assert enc.sigma > 0

    def test_encode_from_raw_input(self):
        X = np.random.default_rng(2).normal(size=(40, 5))
        enc = RBFEncoder.from_data(X, 12, 4, rng=0)
        Z = enc.encode(X)
        assert Z.shape == (40, 4)

    def test_features_passthrough_for_kernel_matrix(self):
        X = np.random.default_rng(3).normal(size=(20, 5))
        enc = RBFEncoder.from_data(X, 8, 3, rng=0)
        K = gaussian_kernel_features(X, enc.centres, enc.sigma)
        # Precomputed features must be accepted and give identical codes.
        assert np.array_equal(enc.encode(K), enc.encode(X))

    def test_rejects_ambiguous_width(self):
        X = np.random.default_rng(4).normal(size=(20, 5))
        enc = RBFEncoder.from_data(X, 8, 3, rng=0)
        with pytest.raises(ValueError):
            enc.features(np.zeros((3, 7)))

    def test_nonlinear_bits_learnable(self):
        # XOR-ish layout unlearnable by a linear encoder in raw space.
        rng = np.random.default_rng(5)
        X = np.vstack(
            [
                rng.normal([3, 3], 0.3, size=(40, 2)),
                rng.normal([-3, -3], 0.3, size=(40, 2)),
                rng.normal([3, -3], 0.3, size=(40, 2)),
                rng.normal([-3, 3], 0.3, size=(40, 2)),
            ]
        )
        z = np.array([1] * 80 + [0] * 80, dtype=np.uint8)  # diagonal pairs
        enc = RBFEncoder.from_data(X, n_centres=40, n_bits=1, rng=0)
        F = enc.features(X)
        state = SGDState()
        for _ in range(60):
            enc.fit_bit(0, F, z, state, rng=0)
        acc = (enc.encode(X)[:, 0] == z).mean()
        assert acc > 0.9
