import numpy as np
import pytest

from repro.data.synthetic import (
    cifar_like,
    make_clustered,
    make_gist_like,
    make_sift_like,
    sift_10k,
    sift_1b_scaled,
    sift_1m_scaled,
)


class TestMakeClustered:
    def test_shape(self):
        assert make_clustered(100, 8, rng=0).shape == (100, 8)

    def test_reproducible(self):
        assert np.array_equal(make_clustered(50, 4, rng=1), make_clustered(50, 4, rng=1))

    def test_cluster_structure_present(self):
        # Within-cluster distances must be far smaller than between-cluster.
        X = make_clustered(200, 10, n_clusters=2, spread=0.1, cluster_scale=50.0, rng=0)
        from scipy.cluster.vq import kmeans2

        _, labels = kmeans2(X, 2, seed=1, minit="++")
        d_within = np.mean(
            [np.linalg.norm(X[labels == c] - X[labels == c].mean(0), axis=1).mean()
             for c in (0, 1)]
        )
        d_between = np.linalg.norm(X[labels == 0].mean(0) - X[labels == 1].mean(0))
        assert d_between > 5 * d_within

    def test_spectral_decay(self):
        # decay < 1 gives an anisotropic, fast-decaying spectrum per cluster.
        X = make_clustered(500, 20, n_clusters=1, cluster_scale=0.0, decay=0.7, rng=0)
        s = np.linalg.svd(X - X.mean(0), compute_uv=False)
        assert s[0] > 5 * s[10]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_clustered(0, 4)
        with pytest.raises(ValueError):
            make_clustered(10, 0)


class TestSiftLike:
    def test_nonnegative_and_bounded(self):
        X = make_sift_like(200, 16, rng=0)
        assert (X >= 0).all() and (X <= 255).all()

    def test_uint8_mode(self):
        X = make_sift_like(50, 16, rng=0, as_uint8=True)
        assert X.dtype == np.uint8

    def test_gist_like_is_centred_ish(self):
        X = make_gist_like(500, 32, rng=0)
        assert abs(X.mean()) < 3.0


class TestNamedWorkloads:
    def test_sift10k_sizes(self):
        tr, te = sift_10k(n_train=500, n_test=20, rng=0)
        assert tr.shape == (500, 128) and te.shape == (20, 128)

    def test_cifar_like_dim(self):
        tr, te = cifar_like(n_train=100, n_test=10, rng=0)
        assert tr.shape[1] == 320

    def test_sift1m_scaling(self):
        tr, te = sift_1m_scaled(scale=0.001, rng=0)
        assert len(tr) == 1000 and len(te) == 10

    def test_sift1b_minimums(self):
        tr, te = sift_1b_scaled(scale=1e-9, rng=0)
        assert len(tr) >= 1000 and len(te) >= 100
