import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.quantize import Uint8Store, dequantize_uint8, quantize_uint8


class TestQuantizeRoundtrip:
    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, max_side=20),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_error_bounded(self, X):
        Q, lo, scale = quantize_uint8(X)
        back = dequantize_uint8(Q, lo, scale)
        # Max error is half a quantisation step.
        assert np.abs(back - X).max() <= 0.5 * scale + 1e-9

    def test_constant_array(self):
        X = np.full((3, 3), 7.5)
        Q, lo, scale = quantize_uint8(X)
        assert np.allclose(dequantize_uint8(Q, lo, scale), X)

    def test_full_range_used(self):
        X = np.array([[0.0, 1.0]])
        Q, _, _ = quantize_uint8(X)
        assert Q.min() == 0 and Q.max() == 255


class TestUint8Store:
    def test_eight_x_compression(self):
        X = np.random.default_rng(0).normal(size=(100, 16))
        store = Uint8Store(X)
        assert store.nbytes * 8 == X.nbytes

    def test_rows_minibatch_access(self):
        X = np.random.default_rng(0).normal(size=(50, 8))
        store = Uint8Store(X)
        idx = np.array([3, 7, 11])
        rows = store.rows(idx)
        assert rows.shape == (3, 8) and rows.dtype == np.float64
        _, _, scale = quantize_uint8(X)
        assert np.abs(rows - X[idx]).max() <= 0.5 * scale + 1e-12

    def test_native_uint8_passthrough(self):
        # Raw SIFT bytes: no rescaling, values preserved exactly.
        Q = np.arange(12, dtype=np.uint8).reshape(3, 4)
        store = Uint8Store(Q)
        assert np.array_equal(store.all_rows(), Q.astype(np.float64))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            Uint8Store(np.zeros(5))

    def test_len_and_shape(self):
        store = Uint8Store(np.zeros((7, 3)))
        assert len(store) == 7 and store.shape == (7, 3)
