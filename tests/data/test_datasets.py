import numpy as np
import pytest

from repro.data.datasets import RetrievalDataset, train_test_split


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(40.0).reshape(20, 2)
        tr, te = train_test_split(X, 5, rng=0)
        assert len(tr) == 15 and len(te) == 5

    def test_disjoint_covering(self):
        X = np.arange(30.0).reshape(15, 2)
        tr, te = train_test_split(X, 4, rng=0)
        all_rows = np.vstack([tr, te])
        assert sorted(all_rows[:, 0].tolist()) == sorted(X[:, 0].tolist())

    def test_rejects_bad_n_test(self):
        X = np.zeros((5, 2))
        with pytest.raises(ValueError):
            train_test_split(X, 5)
        with pytest.raises(ValueError):
            train_test_split(X, 0)


class TestRetrievalDataset:
    def test_base_defaults_to_train(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        ds = RetrievalDataset(train=X, queries=X[:2])
        assert ds.base is ds.train

    def test_separate_base(self):
        rng = np.random.default_rng(0)
        ds = RetrievalDataset(
            train=rng.normal(size=(10, 3)),
            queries=rng.normal(size=(2, 3)),
            base=rng.normal(size=(30, 3)),
        )
        assert len(ds.base) == 30

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError, match="dim"):
            RetrievalDataset(train=np.zeros((5, 3)), queries=np.zeros((2, 4)))

    def test_validation_split(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        ds = RetrievalDataset(train=X, queries=X[:2])
        tr, val = ds.validation_split(0.2, rng=0)
        assert len(val) == 10 and len(tr) == 40

    def test_validation_split_rejects_bad_fraction(self):
        ds = RetrievalDataset(train=np.zeros((5, 2)), queries=np.zeros((1, 2)))
        with pytest.raises(ValueError):
            ds.validation_split(1.5)
