import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.protocol import RoutePlan, WStepProtocol, expected_receives
from repro.distributed.topology import RingTopology


class TestCounterSemantics:
    """Paper section 4.1: train while counter <= Pe; total visits P(e+1)-1."""

    def test_total_visits_rounds(self):
        proto = WStepProtocol(4, 2)
        assert proto.total_visits == 4 * 3 - 1  # P(e+1) - 1

    def test_total_visits_tworound(self):
        proto = WStepProtocol(4, 2, "tworound")
        assert proto.total_visits == 2 * 4 - 1

    @given(st.integers(1, 10), st.integers(1, 5))
    @settings(max_examples=30)
    def test_training_visit_count(self, P, e):
        proto = WStepProtocol(P, e)
        trained = sum(proto.train_passes(c) for c in range(1, proto.total_visits + 1))
        assert trained == P * e  # e full passes over all machines

    @given(st.integers(1, 10), st.integers(1, 5))
    @settings(max_examples=30)
    def test_tworound_same_total_passes(self, P, e):
        # The two schemes perform identical total SGD passes.
        proto = WStepProtocol(P, e, "tworound")
        trained = sum(proto.train_passes(c) for c in range(1, proto.total_visits + 1))
        assert trained == P * e

    def test_final_from_last_training_visit(self):
        proto = WStepProtocol(4, 2)
        assert not proto.is_final(7)
        assert proto.is_final(8)  # counter == Pe
        assert proto.is_final(11)

    def test_forward_until_last_visit(self):
        proto = WStepProtocol(4, 1)
        assert proto.should_forward(6)
        assert not proto.should_forward(7)  # == total_visits

    def test_communication_rounds(self):
        assert WStepProtocol(8, 3).communication_rounds() == 4  # e+1
        assert WStepProtocol(8, 3, "tworound").communication_rounds() == 2

    def test_counter_out_of_range_raises(self):
        proto = WStepProtocol(4, 1)
        with pytest.raises(ValueError):
            proto.train_passes(0)
        with pytest.raises(ValueError):
            proto.train_passes(proto.total_visits + 1)

    def test_p1_degenerate(self):
        proto = WStepProtocol(1, 3)
        assert proto.total_visits == 3
        assert all(proto.train_passes(c) == 1 for c in (1, 2, 3))
        assert not proto.should_forward(3)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            WStepProtocol(0, 1)
        with pytest.raises(ValueError):
            WStepProtocol(2, 0)
        with pytest.raises(ValueError):
            WStepProtocol(2, 1, "threeround")


class TestRoutePlan:
    def test_fixed_path_visits_all_machines_each_epoch(self):
        proto = WStepProtocol(5, 2)
        plan = RoutePlan.fixed(RingTopology.identity(5), proto)
        path = plan.path(home=2)
        assert len(path) == proto.total_visits
        # Each training epoch visits every machine exactly once.
        assert sorted(path[:5]) == list(range(5))
        assert sorted(path[5:10]) == list(range(5))

    def test_shuffled_path_still_covers_every_epoch(self):
        proto = WStepProtocol(6, 3)
        plan = RoutePlan.shuffled(range(6), proto, rng=0)
        path = plan.path(home=0)
        for epoch in range(3):
            assert sorted(path[epoch * 6 : (epoch + 1) * 6]) == list(range(6))

    def test_broadcast_lap_covers_remaining_machines(self):
        proto = WStepProtocol(4, 1)
        plan = RoutePlan.fixed(RingTopology.identity(4), proto)
        path = plan.path(home=1)
        # Last P-1 visits, together with the final training machine, cover all.
        assert sorted(set(path[-3:]) | {path[3]}) == sorted(set(range(4)) - set())

    def test_ring_count_validation(self):
        proto = WStepProtocol(3, 2)
        with pytest.raises(ValueError, match="rings"):
            RoutePlan([RingTopology.identity(3)], proto)

    def test_rings_must_share_machines(self):
        proto = WStepProtocol(3, 1)
        with pytest.raises(ValueError, match="same machines"):
            RoutePlan([RingTopology.identity(3), RingTopology([0, 1, 4])], proto)


class TestExpectedReceives:
    @given(st.integers(1, 8), st.integers(1, 4), st.integers(1, 12))
    @settings(max_examples=40)
    def test_total_receives_identity(self, P, e, M):
        proto = WStepProtocol(P, e)
        plan = RoutePlan.fixed(RingTopology.identity(P), proto)
        homes = {sid: sid * P // M for sid in range(M)}
        counts = expected_receives(plan, homes)
        # Each submodel is received total_visits - 1 times (first visit is local).
        assert sum(counts.values()) == M * (proto.total_visits - 1)

    def test_offset_formula_identity_ring(self):
        # For the identity ring: home gets e receives, offsets 1..P-2 get
        # e+1, offset P-1 gets e (derived in the mp_backend design).
        P, e = 5, 2
        proto = WStepProtocol(P, e)
        plan = RoutePlan.fixed(RingTopology.identity(P), proto)
        counts = expected_receives(plan, {0: 0})  # one submodel homed at 0
        assert counts[0] == e
        assert counts[P - 1] == e
        for p in range(1, P - 1):
            assert counts[p] == e + 1

    def test_shuffled_plan_counts_match_path(self):
        proto = WStepProtocol(4, 2)
        plan = RoutePlan.shuffled(range(4), proto, rng=3)
        homes = {0: 0, 1: 2}
        counts = expected_receives(plan, homes)
        manual = {p: 0 for p in range(4)}
        for home in homes.values():
            for p in plan.path(home)[1:]:
                manual[p] += 1
        assert counts == manual
