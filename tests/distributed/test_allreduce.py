import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.decoder import LinearDecoder
from repro.autoencoder.init import init_codes_pca
from repro.distributed.allreduce import (
    allreduce_sum,
    exact_decoder_fit,
    exact_svm_steps,
    exact_w_step_ba,
)
from repro.distributed.partition import make_shards, partition_indices


@pytest.fixture(scope="module")
def problem():
    from repro.data.synthetic import make_clustered

    X = make_clustered(150, 8, n_clusters=3, rng=9)
    Z, _ = init_codes_pca(X, 4, rng=0)
    parts = partition_indices(len(X), 3, rng=0)
    shards = make_shards(X, X, Z, parts)
    return X, Z, shards


class TestAllreduceSum:
    def test_sums_elementwise(self):
        out = allreduce_sum([np.ones((2, 2)), 2 * np.ones((2, 2))])
        assert np.array_equal(out, 3 * np.ones((2, 2)))

    def test_single_contribution(self):
        a = np.arange(4.0)
        out = allreduce_sum([a])
        assert np.array_equal(out, a)
        out[0] = 99.0
        assert a[0] == 0.0  # copy, not alias

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            allreduce_sum([])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            allreduce_sum([np.zeros(2), np.zeros(3)])


class TestExactDecoderFit:
    def test_matches_serial_lstsq(self, problem):
        X, Z, shards = problem
        B, c = exact_decoder_fit(shards)
        serial = LinearDecoder(4, 8).fit_lstsq(Z, X)
        assert np.allclose(B, serial.B, atol=1e-8)
        assert np.allclose(c, serial.c, atol=1e-8)

    def test_shard_count_invariance(self, problem):
        X, Z, _ = problem
        for P in (1, 2, 5):
            parts = partition_indices(len(X), P, rng=1)
            shards = make_shards(X, X, Z, parts)
            B, c = exact_decoder_fit(shards)
            serial = LinearDecoder(4, 8).fit_lstsq(Z, X)
            assert np.allclose(B, serial.B, atol=1e-7)

    def test_rejects_no_shards(self):
        with pytest.raises(ValueError):
            exact_decoder_fit([])


class TestExactSvmSteps:
    def test_matches_serial_full_batch(self, problem):
        X, Z, shards = problem
        lam = 1e-3
        theta = exact_svm_steps(shards, 0, np.zeros(9), lam, n_steps=20, eta0=0.3)
        # Serial reference: identical full-batch subgradient recursion.
        w, b = np.zeros(8), 0.0
        y = 2.0 * Z[:, 0].astype(float) - 1.0
        n = len(X)
        for t in range(20):
            scores = X @ w + b
            active = (y * scores) < 1.0
            gw = -(y[active] @ X[active]) / n + lam * w if active.any() else lam * w
            gb = -float(y[active].sum()) / n if active.any() else 0.0
            eta = 0.3 / (1.0 + t)
            w, b = w - eta * gw, b - eta * gb
        # Shard partial sums reorder float additions; allow tiny drift.
        assert np.allclose(theta[:-1], w, atol=1e-10)
        assert theta[-1] == pytest.approx(b, abs=1e-10)

    def test_reduces_svm_objective(self, problem):
        X, Z, shards = problem
        from repro.optim.svm import svm_objective

        y = 2.0 * Z[:, 1].astype(float) - 1.0
        theta = exact_svm_steps(shards, 1, np.zeros(9), 1e-3, n_steps=50)
        assert svm_objective(theta[:-1], theta[-1], X, y, 1e-3) < svm_objective(
            np.zeros(8), 0.0, X, y, 1e-3
        )


class TestExactWStepBA:
    def test_decoder_is_optimal_after_step(self, problem):
        X, Z, shards = problem
        ba = BinaryAutoencoder.linear(8, 4)
        exact_w_step_ba(ba, shards, svm_steps=5)
        serial = LinearDecoder(4, 8).fit_lstsq(Z, X)
        assert np.allclose(ba.decoder.B, serial.B, atol=1e-8)

    def test_reduces_e_q(self, problem):
        X, Z, shards = problem
        ba = BinaryAutoencoder.linear(8, 4)
        before = ba.e_q(X, Z, 0.5)
        exact_w_step_ba(ba, shards, svm_steps=30)
        assert ba.e_q(X, Z, 0.5) < before
