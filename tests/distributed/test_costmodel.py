import pytest

from repro.distributed.costmodel import CostModel


class TestCostModel:
    def test_w_work_scales_with_points_and_passes(self):
        cm = CostModel(t_wr=2.0)
        assert cm.w_work(0, 10, passes=3) == 60.0

    def test_speed_divides_work(self):
        cm = CostModel(t_wr=1.0, speeds={1: 2.0})
        assert cm.w_work(1, 10) == 5.0
        assert cm.w_work(0, 10) == 10.0

    def test_self_hop_free(self):
        cm = CostModel(t_wc=100.0)
        assert cm.comm(3, 3) == 0.0

    def test_inter_machine_cost(self):
        cm = CostModel(t_wc=7.0)
        assert cm.comm(0, 1) == 7.0

    def test_intra_node_discount(self):
        cm = CostModel(t_wc=100.0, t_wc_intra=2.0, node_of={0: 0, 1: 0, 2: 1})
        assert cm.comm(0, 1) == 2.0  # same node
        assert cm.comm(1, 2) == 100.0  # across nodes

    def test_no_node_map_ignores_intra(self):
        cm = CostModel(t_wc=50.0, t_wc_intra=1.0)
        assert cm.comm(0, 1) == 50.0

    def test_z_work_formula(self):
        # T_Z per machine = M * n_p * t_zr (eq. 7).
        cm = CostModel(t_zr=3.0)
        assert cm.z_work(0, n_points=10, n_submodels=4) == 120.0

    def test_z_work_respects_speed(self):
        cm = CostModel(t_zr=1.0, speeds={0: 4.0})
        assert cm.z_work(0, 8, 2) == 4.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            CostModel(t_wc=-1.0)
        with pytest.raises(ValueError):
            CostModel(t_wr=0.0)
        with pytest.raises(ValueError):
            CostModel(t_wc_intra=-2.0)
