"""Execution-backend layer: registry, cross-backend conformance, pools.

The paper's generality claim, as a test suite: for a fixed seed and no
within-shard shuffling, the deterministic visit sequence of the counter
protocol makes **every registered engine** — sync tick simulation,
discrete-event simulation, real OS processes over queues, real OS
processes over TCP sockets — produce *bit-identical* final submodels,
for a binary autoencoder and for a deep net alike.

The conformance classes parametrise over ``available_backends()``, so a
newly registered engine is pulled into the parity contract automatically
— registering a backend *is* opting into the suite.
"""

import os

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.core.penalty import GeometricSchedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import (
    AsyncSimBackend,
    Backend,
    MultiprocessBackend,
    SyncSimBackend,
    TCPBackend,
    available_backends,
    get_backend,
)
from repro.distributed.partition import make_shards, partition_indices
from repro.nets.adapter import NetAdapter, make_net_shards
from repro.nets.deepnet import DeepNet
from repro.nets.mac_net import MACTrainerNet

BACKENDS = available_backends()
#: The reference engine every other backend is compared against.
REFERENCE = "sync"
#: Engines that run real OS processes and report wall-clock time.
WALLCLOCK_BACKENDS = ["multiprocess", "tcp"]


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=4)


@pytest.fixture(scope="module")
def net_problem():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 4))
    Y = np.sin(X @ rng.normal(size=(4, 2)))
    return X, Y


def ba_setup(X, P=3, n_bits=4, seed=0):
    """Fresh (adapter, shards) — identical across calls with one seed."""
    ba = BinaryAutoencoder.linear(X.shape[1], n_bits)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=seed)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_shards(X, adapter.features(X), Z, parts)


def net_setup(X, Y, P=3, seed=0):
    net = DeepNet.create([4, 6, 2], rng=1)
    adapter = NetAdapter(net, z_steps=5)
    Zs = MACTrainerNet(net, seed=seed).init_coords(X)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_net_shards(X, Y, Zs, parts)


def final_params(adapter):
    return {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}


def caching_runner(make_problem):
    """Run each backend at most once on the same deterministic problem.

    ``make_problem()`` returns (adapter, shards, schedule); the runner
    fits it with backend ``name`` and caches (history, final params).
    """
    cache = {}

    def _run(name):
        if name not in cache:
            adapter, shards, schedule = make_problem()
            trainer = ParMACTrainer(
                adapter,
                schedule,
                backend=name,
                epochs=2,
                shuffle_within=False,
                seed=0,
            )
            history = trainer.fit(shards)
            trainer.close()
            cache[name] = (history, final_params(adapter))
        return cache[name]

    return _run


class TestRegistry:
    def test_resolves_all_engines(self):
        assert get_backend("sync") is SyncSimBackend
        assert get_backend("async") is AsyncSimBackend
        assert get_backend("multiprocess") is MultiprocessBackend
        assert get_backend("tcp") is TCPBackend

    def test_available_backends(self):
        assert {"sync", "async", "multiprocess", "tcp"} <= set(BACKENDS)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="smoke"):
            get_backend("smoke-signals")

    @pytest.mark.parametrize("name", BACKENDS)
    def test_instances_satisfy_protocol(self, name):
        assert isinstance(get_backend(name)(), Backend)

    def test_trainer_accepts_instance(self, X):
        adapter, shards = ba_setup(X)
        backend = SyncSimBackend(epochs=1, seed=0)
        h = ParMACTrainer(adapter, "sift10k", backend=backend).fit(shards)
        assert len(h) >= 1
        assert backend.cluster is not None


class TestConformanceBA:
    """Bit-parity of a binary autoencoder fit across every engine."""

    @pytest.fixture(scope="class")
    def run(self, X):
        return caching_runner(lambda: (*ba_setup(X), "sift10k"))

    @pytest.mark.parametrize("name", BACKENDS)
    def test_final_e_ba_identical(self, run, name):
        assert run(name)[0].records[-1].e_ba == run(REFERENCE)[0].records[-1].e_ba

    @pytest.mark.parametrize("name", BACKENDS)
    def test_final_submodels_identical(self, run, name):
        ref = run(REFERENCE)[1]
        params = run(name)[1]
        assert set(params) == set(ref)
        for sid in ref:
            assert np.array_equal(params[sid], ref[sid]), (name, sid)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_iteration_counts_match(self, run, name):
        assert len(run(name)[0]) == len(run(REFERENCE)[0])


class TestConformanceNet:
    """Bit-parity of a deep-net fit across every engine."""

    @pytest.fixture(scope="class")
    def run(self, net_problem):
        X, Y = net_problem
        return caching_runner(
            lambda: (*net_setup(X, Y), GeometricSchedule(0.5, 2.0, 5))
        )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_final_e_ba_identical(self, run, name):
        assert run(name)[0].records[-1].e_ba == run(REFERENCE)[0].records[-1].e_ba

    @pytest.mark.parametrize("name", BACKENDS)
    def test_final_units_identical(self, run, name):
        ref = run(REFERENCE)[1]
        params = run(name)[1]
        for sid in ref:
            assert np.array_equal(params[sid], ref[sid]), (name, sid)

    @pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
    def test_deep_net_trains_on_real_processes(self, net_problem, name):
        # The acceptance headline: a DeepNet end-to-end on real processes
        # (queue ring and socket ring alike).
        X, Y = net_problem
        adapter, shards = net_setup(X, Y)
        before = adapter.model.loss(X, Y)
        with ParMACTrainer(
            adapter, GeometricSchedule(0.5, 2.0, 5), backend=name,
            epochs=2, seed=0,
        ) as trainer:
            history = trainer.fit(shards)
        assert history.records[-1].e_ba < before
        assert np.isfinite(history.records[-1].e_q)


class TestTransportBackpressure:
    def test_simultaneous_large_sends_do_not_deadlock(self):
        """Frames bigger than the kernel socket buffers must not wedge
        the ring: two peers sending each other ~8 MB through 8 KB socket
        buffers, then receiving. A blocking sendall-based transport
        deadlocks here (circular wait on full buffers); the transport
        must interleave reads while waiting for writability."""
        import socket
        import threading

        from repro.distributed.backends.tcp import _SocketRingTransport
        from repro.distributed.interfaces import SubmodelSpec
        from repro.distributed.messages import SubmodelMessage
        from repro.optim.sgd import SGDState

        spec = SubmodelSpec(0, "w")
        theta = np.arange(1_000_000, dtype=np.float64)  # ~8 MB payload

        # One directed socketpair per mesh edge, with tiny buffers so
        # the frame vastly exceeds the in-flight capacity.
        def tiny_pair():
            a, b = socket.socketpair()
            for s in (a, b):
                s.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
                s.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
            return a, b

        a_out, b_in = tiny_pair()
        b_out, a_in = tiny_pair()
        transports = {
            0: _SocketRingTransport(0, {1: a_out}, {1: a_in}, {0: spec}),
            1: _SocketRingTransport(1, {0: b_out}, {0: b_in}, {0: spec}),
        }
        received, errors = {}, {}

        def node(rank, peer):
            try:
                msg = SubmodelMessage(
                    spec=spec, theta=theta + rank, sgd_state=SGDState()
                )
                transports[rank].send(peer, msg)
                transports[rank].flush()
                received[rank] = transports[rank].recv()
            except Exception as exc:  # pragma: no cover - failure path
                errors[rank] = exc

        threads = [
            threading.Thread(target=node, args=(0, 1), daemon=True),
            threading.Thread(target=node, args=(1, 0), daemon=True),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        try:
            assert not errors, errors
            assert not any(t.is_alive() for t in threads), "transport deadlocked"
            assert np.array_equal(received[0].theta, theta + 1)
            assert np.array_equal(received[1].theta, theta + 0)
        finally:
            for s in (a_out, a_in, b_out, b_in):
                s.close()


class TestTCPWire:
    """Socket-specific behaviour: framing stats and the batching knob."""

    def test_wire_stats_surfaced(self, X):
        adapter, shards = ba_setup(X)
        with ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 2), backend="tcp", seed=0
        ) as trainer:
            history = trainer.fit(shards)
        rec = history.records[-1]
        assert rec.extra["bytes_sent"] > 0
        assert rec.extra["hops"] > 0
        assert rec.extra["frames"] > 0
        # Frame overhead: wire bytes strictly exceed raw payload bytes.
        assert rec.extra["bytes_sent"] > rec.extra["payload_bytes"]

    def test_batching_coalesces_frames(self, X):
        frames = {}
        for batch_hops in (True, False):
            adapter, shards = ba_setup(X)
            with ParMACTrainer(
                adapter, GeometricSchedule(1e-3, 2.0, 2), backend="tcp",
                epochs=2, shuffle_within=False, seed=0,
                backend_options={"batch_hops": batch_hops},
            ) as trainer:
                history = trainer.fit(shards)
            rec = history.records[-1]
            frames[batch_hops] = rec.extra["frames"]
            # Hops (message count) are protocol-determined, identical
            # either way; unbatched sends one frame per hop.
            if not batch_hops:
                assert rec.extra["frames"] == rec.extra["hops"]
        assert frames[True] < frames[False]

    def test_batching_does_not_change_bits(self, X):
        finals = {}
        for batch_hops in (True, False):
            adapter, shards = ba_setup(X)
            with ParMACTrainer(
                adapter, GeometricSchedule(1e-3, 2.0, 2), backend="tcp",
                epochs=2, shuffle_within=False, seed=0,
                backend_options={"batch_hops": batch_hops},
            ) as trainer:
                trainer.fit(shards)
            finals[batch_hops] = final_params(adapter)
        for sid in finals[True]:
            assert np.array_equal(finals[True][sid], finals[False][sid])

    def test_explicit_ports(self, X):
        import socket

        # Grab free ports the OS hands out, then pin the workers to them.
        socks = [socket.socket() for _ in range(3)]
        try:
            for s in socks:
                s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                s.bind(("127.0.0.1", 0))
            ports = [s.getsockname()[1] for s in socks]
        finally:
            for s in socks:
                s.close()
        adapter, shards = ba_setup(X)
        with ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 1), backend="tcp", seed=0,
            backend_options={"ports": ports},
        ) as trainer:
            history = trainer.fit(shards)
        assert np.isfinite(history.records[-1].e_q)

    def test_shuffle_ring_over_sockets(self, X):
        adapter, shards = ba_setup(X)
        with ParMACTrainer(
            adapter, "sift10k", backend="tcp",
            epochs=2, shuffle_ring=True, seed=0,
        ) as trainer:
            history = trainer.fit(shards)
        assert len(history) >= 1
        assert all(np.isfinite(r.e_q) for r in history.records)
        assert history.records[-1].e_q < history.records[0].e_q


class TestOverlapSend:
    """``overlap_send`` pipelines ring sends behind compute — on the
    wall-clock engines via a background sender thread, on the simulated
    engines via the virtual NIC timeline. It may change *when* messages
    travel, never *what* is computed: every engine with overlap on must
    stay bit-identical to the serial-send sync reference."""

    @pytest.fixture(scope="class")
    def run(self, X):
        cache = {}

        def _run(name, overlap):
            key = (name, overlap)
            if key not in cache:
                adapter, shards = ba_setup(X)
                with ParMACTrainer(
                    adapter, GeometricSchedule(1e-2, 2.0, 3), backend=name,
                    epochs=2, shuffle_within=False, seed=0,
                    backend_options={"overlap_send": overlap},
                ) as trainer:
                    history = trainer.fit(shards)
                cache[key] = (history, final_params(adapter))
            return cache[key]

        return _run

    @pytest.mark.parametrize("name", BACKENDS)
    def test_overlap_bit_identical_to_serial_reference(self, run, name):
        ref = run(REFERENCE, False)[1]
        params = run(name, True)[1]
        assert set(params) == set(ref)
        for sid in ref:
            assert np.array_equal(params[sid], ref[sid]), (name, sid)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_flag_surfaced_in_stats(self, run, name):
        for overlap in (True, False):
            rec = run(name, overlap)[0].records[-1]
            assert rec.extra["overlap_send"] is overlap

    @pytest.mark.parametrize("name", BACKENDS)
    def test_iteration_counts_match(self, run, name):
        # Pipelining must not add or drop protocol rounds anywhere.
        assert len(run(name, True)[0]) == len(run(REFERENCE, False)[0])


@pytest.mark.skipif(
    not hasattr(os, "sched_setaffinity"), reason="no CPU affinity on this OS"
)
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestWorkerPinning:
    """Opt-in ``pin_workers``: each worker gets a disjoint (or, with
    fewer CPUs than workers, shared-tail) slice of the parent's cpuset,
    the applied sets surface in the iteration stats, and pinning — a
    placement decision — never changes the trained bits."""

    def test_cpusets_recorded_and_bits_unchanged(self, X, name):
        finals = {}
        for pin in (True, False):
            adapter, shards = ba_setup(X)
            with ParMACTrainer(
                adapter, GeometricSchedule(1e-2, 2.0, 2), backend=name,
                epochs=2, shuffle_within=False, seed=0,
                backend_options={"pin_workers": pin},
            ) as trainer:
                history = trainer.fit(shards)
            rec = history.records[-1]
            if pin:
                cpusets = rec.extra["cpusets"]
                assert set(cpusets) == {0, 1, 2}
                parent = os.sched_getaffinity(0)
                for cpus in cpusets.values():
                    assert cpus and set(cpus) <= parent
            else:
                assert "cpusets" not in rec.extra
            finals[pin] = final_params(adapter)
        for sid in finals[True]:
            assert np.array_equal(finals[True][sid], finals[False][sid])


@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestWorkerPools:
    def test_pool_persists_across_fits(self, X, name):
        adapter, shards = ba_setup(X)
        trainer = ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 2), backend=name, seed=0
        )
        try:
            trainer.fit(shards)
            pids_first = list(trainer.backend.worker_pids)
            _, shards2 = ba_setup(X)
            trainer.fit(shards2)
            pids_second = list(trainer.backend.worker_pids)
            assert pids_first == pids_second != []
        finally:
            trainer.close()
        assert trainer.backend.worker_pids == []

    def test_pool_respawns_on_machine_count_change(self, X, name):
        adapter, shards = ba_setup(X, P=3)
        trainer = ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 1), backend=name, seed=0
        )
        try:
            trainer.fit(shards)
            assert len(trainer.backend.worker_pids) == 3
            _, shards2 = ba_setup(X, P=2)
            trainer.fit(shards2)
            assert len(trainer.backend.worker_pids) == 2
        finally:
            trainer.close()

    def test_worker_error_surfaces(self, X, name):
        adapter, shards = ba_setup(X)
        backend = get_backend(name)(seed=0)
        backend.setup(adapter, shards)
        try:
            backend._cmd_qs[0].put(("iter", "not-a-mu", None, 0))
            with pytest.raises(RuntimeError, match="worker 0 failed"):
                backend._collect("result")
        finally:
            backend.close()


class TestMultiprocessShuffling:
    def test_shuffle_ring_honoured(self, X):
        # The mp path used to silently ignore shuffle_ring; now it must
        # reshuffle the route per epoch and still satisfy the protocol
        # (deterministic termination, finite objectives, convergence).
        adapter, shards = ba_setup(X)
        with ParMACTrainer(
            adapter, "sift10k", backend="multiprocess",
            epochs=2, shuffle_ring=True, seed=0,
        ) as trainer:
            history = trainer.fit(shards)
        assert len(history) >= 1
        assert all(np.isfinite(r.e_q) for r in history.records)
        assert history.records[-1].e_q < history.records[0].e_q

    def test_shuffled_route_changes_result(self, X):
        # With shuffling on, the visiting order (hence SGD stream) differs
        # from the fixed ring — same quality, different bits.
        finals = {}
        for shuffle in (False, True):
            adapter, shards = ba_setup(X)
            with ParMACTrainer(
                adapter, GeometricSchedule(1e-3, 2.0, 2), backend="multiprocess",
                epochs=2, shuffle_within=False, shuffle_ring=shuffle, seed=0,
            ) as trainer:
                trainer.fit(shards)
            finals[shuffle] = final_params(adapter)
        assert any(
            not np.array_equal(finals[False][sid], finals[True][sid])
            for sid in finals[False]
        )


class TestStreamingConformance:
    """Streaming is a backend capability: the identical arrival schedule
    on every engine — queued via ``Backend.ingest``, drained at epoch
    boundaries, coded by the current nested model — must yield
    bit-identical final submodels (paper section 4.3, form 1)."""

    @pytest.fixture(scope="class")
    def arrivals(self, X):
        from repro.data.synthetic import make_clustered

        X1 = make_clustered(20, X.shape[1], n_clusters=3, rng=11)
        X2 = make_clustered(15, X.shape[1], n_clusters=3, rng=12)
        return {1: [(0, X1)], 3: [(2, X2), (1, X1)]}

    @pytest.fixture(scope="class")
    def run(self, X, arrivals):
        cache = {}

        def _run(name):
            if name not in cache:
                adapter, shards = ba_setup(X)
                trainer = ParMACTrainer(
                    adapter,
                    GeometricSchedule(1e-3, 2.0, 5),
                    backend=name,
                    epochs=2,
                    shuffle_within=False,
                    seed=0,
                )
                history = trainer.fit(shards, arrivals=arrivals)
                trainer.close()
                cache[name] = (history, final_params(adapter))
            return cache[name]

        return _run

    @pytest.mark.parametrize("name", BACKENDS)
    def test_streamed_finals_identical(self, run, name):
        ref = run(REFERENCE)[1]
        params = run(name)[1]
        assert set(params) == set(ref)
        for sid in ref:
            assert np.array_equal(params[sid], ref[sid]), (name, sid)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_rows_ingested_surfaced(self, run, name, arrivals):
        history = run(name)[0]
        per_iter = [r.extra["rows_ingested"] for r in history.records]
        expected = [
            sum(len(Xa) for _, Xa in arrivals.get(i, []))
            for i in range(len(per_iter))
        ]
        assert per_iter == expected

    @pytest.mark.parametrize("name", BACKENDS)
    def test_streaming_changes_the_model(self, run, name, X):
        # The streamed rows must actually influence training: a run
        # without arrivals ends elsewhere.
        adapter, shards = ba_setup(X)
        with ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 5), backend=name,
            epochs=2, shuffle_within=False, seed=0,
        ) as trainer:
            trainer.fit(shards)
        plain = final_params(adapter)
        streamed = run(name)[1]
        assert any(
            not np.array_equal(plain[sid], streamed[sid]) for sid in plain
        )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_ingest_validation_is_eager(self, name, X):
        adapter, shards = ba_setup(X)
        backend = get_backend(name)(seed=0)
        backend.setup(adapter, shards)
        try:
            with pytest.raises(KeyError):
                backend.ingest(9, np.zeros((3, X.shape[1])))
            with pytest.raises(ValueError, match="columns"):
                backend.ingest(0, np.zeros((3, X.shape[1] + 1)))
            with pytest.raises(ValueError, match="empty"):
                backend.ingest(0, np.zeros((0, X.shape[1])))
        finally:
            backend.close()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_pending_ingests_do_not_leak_across_fits(self, name, X):
        # A batch queued but never drained in fit A must not land in
        # fit B's shards.
        adapter, shards = ba_setup(X)
        backend = get_backend(name)(seed=0)
        try:
            backend.setup(adapter, shards)
            backend.ingest(0, np.zeros((5, X.shape[1])))
            adapter2, shards2 = ba_setup(X)
            backend.setup(adapter2, shards2)
            stats = backend.run_iteration(1e-3)
            assert stats.rows_ingested == 0
        finally:
            backend.close()

    def test_ingest_requires_setup(self):
        backend = get_backend("sync")()
        with pytest.raises(RuntimeError, match="setup"):
            backend.ingest(0, np.zeros((3, 8)))


class TestElasticConformance:
    """Machine addition is a backend capability: the identical join
    schedule on every engine — queued via ``Backend.add_machine``,
    admitted at the iteration boundary with the current submodels handed
    over (in-process clone, shared-memory ship + replan, or JOIN/WELCOME
    framed hand-off) — must yield bit-identical final submodels (paper
    section 4.3, form 2)."""

    @pytest.fixture(scope="class")
    def joins(self, X):
        from repro.data.synthetic import make_clustered

        X1 = make_clustered(18, X.shape[1], n_clusters=3, rng=21)
        X2 = make_clustered(12, X.shape[1], n_clusters=3, rng=22)
        # One plain append-join early, one mid-ring insertion later.
        return {1: [X1], 3: [(X2, 1)]}

    @pytest.fixture(scope="class")
    def run(self, X, joins):
        cache = {}

        def _run(name):
            if name not in cache:
                adapter, shards = ba_setup(X)
                trainer = ParMACTrainer(
                    adapter,
                    GeometricSchedule(1e-3, 2.0, 5),
                    backend=name,
                    epochs=2,
                    shuffle_within=False,
                    seed=0,
                )
                history = trainer.fit(shards, joins=joins)
                trainer.close()
                cache[name] = (history, final_params(adapter))
            return cache[name]

        return _run

    @pytest.mark.parametrize("name", BACKENDS)
    def test_joined_finals_identical(self, run, name):
        ref = run(REFERENCE)[1]
        params = run(name)[1]
        assert set(params) == set(ref)
        for sid in ref:
            assert np.array_equal(params[sid], ref[sid]), (name, sid)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_joins_surfaced_in_stats(self, run, name):
        history = run(name)[0]
        added = [r.extra["machines_added"] for r in history.records]
        machines = [r.extra["n_machines"] for r in history.records]
        assert added == [0, 1, 0, 1, 0]
        assert machines == [3, 4, 4, 5, 5]
        # Admitting a machine costs re-planning time, and it is measured.
        assert all(
            r.extra["replan_s"] > 0
            for r in history.records
            if r.extra["machines_added"]
        )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_join_changes_the_model(self, run, name, X):
        adapter, shards = ba_setup(X)
        with ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 5), backend=name,
            epochs=2, shuffle_within=False, seed=0,
        ) as trainer:
            trainer.fit(shards)
        plain = final_params(adapter)
        joined = run(name)[1]
        assert any(
            not np.array_equal(plain[sid], joined[sid]) for sid in plain
        )


class TestCheckpointRestore:
    """``checkpoint()`` → kill → ``restore()`` reaches the same final
    model as the uninterrupted run, on every engine (shuffle_within on,
    so the snapshot's RNG states are load-bearing)."""

    MUS = [1e-3 * 2.0**i for i in range(5)]
    CUT = 2

    def backend_for(self, name):
        return get_backend(name)(epochs=2, shuffle_within=True, seed=0)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_restore_matches_uninterrupted_run(self, name, X, tmp_path):
        adapter, shards = ba_setup(X)
        with self.backend_for(name) as backend:
            backend.setup(adapter, shards)
            for mu in self.MUS:
                backend.run_iteration(mu)
            ref = final_params(adapter)

        adapter2, shards2 = ba_setup(X)
        path = tmp_path / "fit.ckpt"
        with self.backend_for(name) as backend:
            backend.setup(adapter2, shards2)
            for mu in self.MUS[: self.CUT]:
                backend.run_iteration(mu)
            state = backend.checkpoint()
            assert state.iteration == self.CUT
            assert state.backend == name
            state.save(path)
        # The pool/cluster is gone (close); a brand-new backend resumes
        # from the file alone (the snapshot carries the adapter).
        with self.backend_for(name) as backend:
            restored = type(state).load(path)
            backend.restore(restored)
            for mu in self.MUS[self.CUT :]:
                backend.run_iteration(mu)
            got = final_params(backend.adapter)
        assert set(got) == set(ref)
        for sid in ref:
            assert np.array_equal(got[sid], ref[sid]), (name, sid)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_trainer_resume_from_checkpoint_file(self, name, X, tmp_path):
        schedule = GeometricSchedule(1e-3, 2.0, 5)
        adapter, shards = ba_setup(X)
        with ParMACTrainer(
            adapter, schedule, backend=name, epochs=2, seed=0
        ) as trainer:
            full = trainer.fit(shards)
        ref = final_params(adapter)

        path = tmp_path / "trainer.ckpt"
        adapter2, shards2 = ba_setup(X)
        with ParMACTrainer(
            adapter2, GeometricSchedule(1e-3, 2.0, 2), backend=name,
            epochs=2, seed=0,
        ) as trainer:
            trainer.fit(shards2, checkpoint_path=path)
        # A fresh trainer — fresh model object, fresh backend — resumes
        # from the file; its adapter receives the snapshot parameters.
        adapter3, _ = ba_setup(X)
        with ParMACTrainer(
            adapter3, schedule, backend=name, epochs=2, seed=0
        ) as trainer:
            resumed = trainer.fit(resume=path)
        assert [r.iteration for r in resumed.records] == [2, 3, 4]
        assert resumed.records[-1].e_ba == full.records[-1].e_ba
        got = final_params(adapter3)
        for sid in ref:
            assert np.array_equal(got[sid], ref[sid]), (name, sid)

    def test_restore_preserves_streaming_counters(self, X):
        # Ingest before the cut; the restored plane must keep counting
        # from the snapshot (global indices, rows_ingested) — not reset.
        backend = get_backend("sync")(epochs=1, shuffle_within=False, seed=0)
        adapter, shards = ba_setup(X)
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        backend.ingest(0, X[:9])
        backend.run_iteration(2e-3)
        state = backend.checkpoint()
        assert state.bookkeeping["rows_ingested"] == 9
        backend.close()

        fresh = get_backend("sync")(epochs=1, shuffle_within=False, seed=0)
        fresh.restore(state)
        fresh.ingest(1, X[9:14])
        stats = fresh.run_iteration(4e-3)
        assert stats.rows_ingested == 5
        assert fresh.dataplane.rows_ingested == 14
        fresh.close()


class TestFaultPolicySim:
    """Fault policies on the simulated engine: fail_fast raises exactly
    like a wall-clock pool teardown; drop_shard retires the shard,
    re-plans the ring and keeps training."""

    def test_drop_shard_continues_with_survivors(self, X):
        adapter, shards = ba_setup(X, P=4)
        backend = get_backend("sync")(seed=0, fault_policy="drop_shard")
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        lost_rows = backend.cluster.shards[2].n
        n_before = backend.cluster.n_points
        backend.inject_fault(2, tick=1)
        stats = backend.run_iteration(2e-3)
        assert stats.shards_lost == 1
        assert stats.n_machines == 3
        assert backend.cluster.n_points == n_before - lost_rows
        assert np.isfinite(stats.e_q)
        # Training continues and the survivor copies stay consistent.
        stats = backend.run_iteration(4e-3)
        assert stats.shards_lost == 0
        assert backend.cluster.model_copies_consistent()

    def test_fail_fast_raises_on_fault(self, X):
        adapter, shards = ba_setup(X, P=3)
        backend = get_backend("sync")(seed=0)  # fail_fast is the default
        backend.setup(adapter, shards)
        backend.inject_fault(1)
        with pytest.raises(RuntimeError, match="fail_fast"):
            backend.run_iteration(1e-3)

    def test_unknown_fault_policy_rejected(self):
        with pytest.raises(ValueError, match="fault_policy"):
            get_backend("sync")(fault_policy="shrug")

    def test_async_rejects_fault_injection(self, X):
        adapter, shards = ba_setup(X, P=3)
        backend = get_backend("async")(seed=0, fault_policy="drop_shard")
        backend.setup(adapter, shards)
        with pytest.raises(ValueError, match="sync"):
            backend.inject_fault(1)

    def test_unreached_fault_tick_raises(self, X):
        # A scheduled death whose tick the W step never reaches must not
        # silently measure a fault-free run.
        adapter, shards = ba_setup(X, P=3)
        backend = get_backend("sync")(seed=0, fault_policy="drop_shard")
        backend.setup(adapter, shards)
        backend.inject_fault(1, tick=10_000)
        with pytest.raises(RuntimeError, match="never fired"):
            backend.run_iteration(1e-3)
