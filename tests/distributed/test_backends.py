"""Execution-backend layer: registry, parity, pool persistence.

The paper's generality claim, as a test: for a fixed seed and no
within-shard shuffling, the deterministic visit sequence of the counter
protocol makes all three engines — sync tick simulation, discrete-event
simulation, and real OS processes — produce *bit-identical* final
submodels, for a binary autoencoder and for a deep net alike.
"""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.core.penalty import GeometricSchedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import (
    AsyncSimBackend,
    Backend,
    MultiprocessBackend,
    SyncSimBackend,
    available_backends,
    get_backend,
)
from repro.distributed.partition import make_shards, partition_indices
from repro.nets.adapter import NetAdapter, make_net_shards
from repro.nets.deepnet import DeepNet
from repro.nets.mac_net import MACTrainerNet

BACKENDS = ["sync", "async", "multiprocess"]


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=4)


@pytest.fixture(scope="module")
def net_problem():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 4))
    Y = np.sin(X @ rng.normal(size=(4, 2)))
    return X, Y


def ba_setup(X, P=3, n_bits=4, seed=0):
    """Fresh (adapter, shards) — identical across calls with one seed."""
    ba = BinaryAutoencoder.linear(X.shape[1], n_bits)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=seed)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_shards(X, adapter.features(X), Z, parts)


def net_setup(X, Y, P=3, seed=0):
    net = DeepNet.create([4, 6, 2], rng=1)
    adapter = NetAdapter(net, z_steps=5)
    Zs = MACTrainerNet(net, seed=seed).init_coords(X)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_net_shards(X, Y, Zs, parts)


def final_params(adapter):
    return {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}


class TestRegistry:
    def test_resolves_all_three_engines(self):
        assert get_backend("sync") is SyncSimBackend
        assert get_backend("async") is AsyncSimBackend
        assert get_backend("multiprocess") is MultiprocessBackend

    def test_available_backends(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="smoke"):
            get_backend("smoke-signals")

    def test_instances_satisfy_protocol(self):
        for name in BACKENDS:
            assert isinstance(get_backend(name)(), Backend)

    def test_trainer_accepts_instance(self, X):
        adapter, shards = ba_setup(X)
        backend = SyncSimBackend(epochs=1, seed=0)
        h = ParMACTrainer(adapter, "sift10k", backend=backend).fit(shards)
        assert len(h) >= 1
        assert backend.cluster is not None


class TestBackendParityBA:
    @pytest.fixture(scope="class")
    def runs(self, X):
        out = {}
        for name in BACKENDS:
            adapter, shards = ba_setup(X)
            trainer = ParMACTrainer(
                adapter,
                "sift10k",
                backend=name,
                epochs=2,
                shuffle_within=False,
                seed=0,
            )
            history = trainer.fit(shards)
            out[name] = (history, final_params(adapter))
            trainer.close()
        return out

    def test_final_e_ba_identical(self, runs):
        e_bas = {name: h.records[-1].e_ba for name, (h, _) in runs.items()}
        assert e_bas["sync"] == e_bas["async"] == e_bas["multiprocess"]

    def test_final_submodels_identical(self, runs):
        ref = runs["sync"][1]
        for name in ("async", "multiprocess"):
            params = runs[name][1]
            assert set(params) == set(ref)
            for sid in ref:
                assert np.array_equal(params[sid], ref[sid]), (name, sid)

    def test_iteration_counts_match(self, runs):
        lengths = {len(h) for h, _ in runs.values()}
        assert len(lengths) == 1


class TestBackendParityNet:
    @pytest.fixture(scope="class")
    def runs(self, net_problem):
        X, Y = net_problem
        out = {}
        for name in BACKENDS:
            adapter, shards = net_setup(X, Y)
            trainer = ParMACTrainer(
                adapter,
                GeometricSchedule(0.5, 2.0, 5),
                backend=name,
                epochs=2,
                shuffle_within=False,
                seed=0,
            )
            history = trainer.fit(shards)
            out[name] = (history, final_params(adapter))
            trainer.close()
        return out

    def test_final_e_ba_identical(self, runs):
        e_bas = {name: h.records[-1].e_ba for name, (h, _) in runs.items()}
        assert e_bas["sync"] == e_bas["async"] == e_bas["multiprocess"]

    def test_final_units_identical(self, runs):
        ref = runs["sync"][1]
        for name in ("async", "multiprocess"):
            params = runs[name][1]
            for sid in ref:
                assert np.array_equal(params[sid], ref[sid]), (name, sid)

    def test_deep_net_trains_on_multiprocess(self, net_problem):
        # The acceptance headline: a DeepNet end-to-end on real processes.
        X, Y = net_problem
        adapter, shards = net_setup(X, Y)
        before = adapter.model.loss(X, Y)
        with ParMACTrainer(
            adapter, GeometricSchedule(0.5, 2.0, 5), backend="multiprocess",
            epochs=2, seed=0,
        ) as trainer:
            history = trainer.fit(shards)
        assert history.records[-1].e_ba < before
        assert np.isfinite(history.records[-1].e_q)


class TestMultiprocessPool:
    def test_pool_persists_across_fits(self, X):
        adapter, shards = ba_setup(X)
        trainer = ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 2), backend="multiprocess", seed=0
        )
        try:
            trainer.fit(shards)
            pids_first = list(trainer.backend.worker_pids)
            _, shards2 = ba_setup(X)
            trainer.fit(shards2)
            pids_second = list(trainer.backend.worker_pids)
            assert pids_first == pids_second != []
        finally:
            trainer.close()
        assert trainer.backend.worker_pids == []

    def test_pool_respawns_on_machine_count_change(self, X):
        adapter, shards = ba_setup(X, P=3)
        trainer = ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 1), backend="multiprocess", seed=0
        )
        try:
            trainer.fit(shards)
            assert len(trainer.backend.worker_pids) == 3
            _, shards2 = ba_setup(X, P=2)
            trainer.fit(shards2)
            assert len(trainer.backend.worker_pids) == 2
        finally:
            trainer.close()

    def test_shuffle_ring_honoured(self, X):
        # The mp path used to silently ignore shuffle_ring; now it must
        # reshuffle the route per epoch and still satisfy the protocol
        # (deterministic termination, finite objectives, convergence).
        adapter, shards = ba_setup(X)
        with ParMACTrainer(
            adapter, "sift10k", backend="multiprocess",
            epochs=2, shuffle_ring=True, seed=0,
        ) as trainer:
            history = trainer.fit(shards)
        assert len(history) >= 1
        assert all(np.isfinite(r.e_q) for r in history.records)
        assert history.records[-1].e_q < history.records[0].e_q

    def test_shuffled_route_changes_result(self, X):
        # With shuffling on, the visiting order (hence SGD stream) differs
        # from the fixed ring — same quality, different bits.
        finals = {}
        for shuffle in (False, True):
            adapter, shards = ba_setup(X)
            with ParMACTrainer(
                adapter, GeometricSchedule(1e-3, 2.0, 2), backend="multiprocess",
                epochs=2, shuffle_within=False, shuffle_ring=shuffle, seed=0,
            ) as trainer:
                trainer.fit(shards)
            finals[shuffle] = final_params(adapter)
        assert any(
            not np.array_equal(finals[False][sid], finals[True][sid])
            for sid in finals[False]
        )

    def test_worker_error_surfaces(self, X):
        adapter, shards = ba_setup(X)
        backend = MultiprocessBackend(seed=0)
        backend.setup(adapter, shards)
        try:
            backend._cmd_qs[0].put(("iter", "not-a-mu", None, 0))
            with pytest.raises(RuntimeError, match="worker 0 failed"):
                backend._collect("result")
        finally:
            backend.close()
