"""Reduced-precision submodel communication (paper section 9 refinement)."""

import numpy as np
import pytest

from repro.distributed.costmodel import CostModel

from .test_cluster import build_cluster


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(160, 10, n_clusters=4, rng=12)


class TestMessagePrecision:
    def test_rejects_non_float_dtype(self, X):
        with pytest.raises(ValueError, match="float"):
            build_cluster(X, message_dtype=np.int32)

    def test_bytes_halved_at_float32(self, X):
        full, _ = build_cluster(X, P=4, cost=CostModel(t_wc=10.0))
        half, _ = build_cluster(X, P=4, cost=CostModel(t_wc=10.0),
                                message_dtype=np.float32)
        s_full = full.w_step(0.1)
        s_half = half.w_step(0.1)
        assert s_half.bytes_sent * 2 == s_full.bytes_sent
        assert s_half.comm_time == pytest.approx(s_full.comm_time / 2)

    def test_float16_quarters_comm(self, X):
        full, _ = build_cluster(X, P=4, cost=CostModel(t_wc=10.0))
        quarter, _ = build_cluster(X, P=4, cost=CostModel(t_wc=10.0),
                                   message_dtype=np.float16)
        assert quarter.w_step(0.1).comm_time == pytest.approx(
            full.w_step(0.1).comm_time / 4
        )

    def test_float32_accuracy_nearly_unchanged(self, X):
        # "with little effect on the accuracy" — E_Q after several
        # iterations must track the full-precision run closely.
        full, af = build_cluster(X, P=4, seed=3)
        low, al = build_cluster(X, P=4, seed=3, message_dtype=np.float32)
        mus = [1e-3 * 2**i for i in range(5)]
        for mu in mus:
            full.iteration(mu)
            low.iteration(mu)
        assert low.e_q(mus[-1]) == pytest.approx(full.e_q(mus[-1]), rel=0.02)

    def test_float16_still_trains(self, X):
        low, _ = build_cluster(X, P=4, seed=3, message_dtype=np.float16)
        mus = [1e-3 * 2**i for i in range(5)]
        eqs = []
        for mu in mus:
            low.iteration(mu)
            eqs.append(low.e_q(mu))
        assert np.isfinite(eqs[-1])
        assert eqs[-1] < eqs[0]

    def test_invariants_hold_under_precision_loss(self, X):
        low, _ = build_cluster(X, P=4, message_dtype=np.float16)
        low.w_step(0.1)
        assert low.model_copies_consistent()

    def test_parameters_are_float64_in_model(self, X):
        # The wire format is reduced; the model itself stays float64.
        low, adapter = build_cluster(X, P=3, message_dtype=np.float32)
        low.w_step(0.1)
        assert adapter.model.encoder.A.dtype == np.float64

    def test_p1_unaffected_by_dtype(self, X):
        # Self-hops never serialise, so P=1 results are bit-identical.
        a, ad_a = build_cluster(X, P=1, seed=5)
        b, ad_b = build_cluster(X, P=1, seed=5, message_dtype=np.float16)
        a.w_step(0.1)
        b.w_step(0.1)
        assert np.array_equal(ad_a.model.encoder.A, ad_b.model.encoder.A)
