"""Reduced-precision training and communication (paper section 9).

Two independent knobs, both covered here:

* ``message_dtype`` — the *wire* precision: every ring hop round-trips
  parameters through a reduced dtype. Historically simulator-only; now a
  base-backend knob honoured by the wall-clock engines too (cast at pack
  time on the pickle-free wire).
* ``compute_dtype`` — the *model's* end-to-end precision, set at model
  construction (``BinaryAutoencoder.linear(..., dtype=...)`` /
  ``DeepNet.create(..., dtype=...)``) and threaded through shards,
  engines, the data plane and checkpoints.
"""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.core.penalty import GeometricSchedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import available_backends, get_backend
from repro.distributed.costmodel import CostModel
from repro.distributed.partition import make_shards, partition_indices
from repro.nets.adapter import NetAdapter, make_net_shards
from repro.nets.deepnet import DeepNet
from repro.nets.mac_net import MACTrainerNet

from .test_cluster import build_cluster

BACKENDS = available_backends()


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(160, 10, n_clusters=4, rng=12)


def ba_setup(X, dtype=np.float64, P=3, n_bits=4, seed=0):
    ba = BinaryAutoencoder.linear(X.shape[1], n_bits, dtype=dtype)
    adapter = BAAdapter(ba)
    Xc = np.asarray(X, dtype=dtype)
    Z, _ = init_codes_pca(X, n_bits, rng=seed)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_shards(Xc, adapter.features(Xc), Z, parts)


def net_setup(X, dtype=np.float64, P=3, seed=0):
    rng = np.random.default_rng(7)
    Y = np.sin(np.asarray(X) @ rng.normal(size=(X.shape[1], 2)))
    net = DeepNet.create([X.shape[1], 6, 2], rng=1, dtype=dtype)
    adapter = NetAdapter(net, z_steps=5)
    Zs = MACTrainerNet(net, seed=seed).init_coords(np.asarray(X, dtype=dtype))
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_net_shards(X, Y, Zs, parts)


def fit(make_problem, backend, *, n_iters=4, **backend_options):
    adapter, shards = make_problem()
    trainer = ParMACTrainer(
        adapter,
        GeometricSchedule(1e-3, 2.0, n_iters),
        backend=backend,
        epochs=2,
        shuffle_within=False,
        seed=0,
        backend_options=backend_options,
    )
    history = trainer.fit(shards)
    trainer.close()
    return adapter, history


def final_params(adapter):
    return {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}


class TestMessagePrecision:
    def test_rejects_non_float_dtype(self, X):
        with pytest.raises(ValueError, match="float"):
            build_cluster(X, message_dtype=np.int32)

    def test_bytes_halved_at_float32(self, X):
        full, _ = build_cluster(X, P=4, cost=CostModel(t_wc=10.0))
        half, _ = build_cluster(X, P=4, cost=CostModel(t_wc=10.0),
                                message_dtype=np.float32)
        s_full = full.w_step(0.1)
        s_half = half.w_step(0.1)
        assert s_half.bytes_sent * 2 == s_full.bytes_sent
        assert s_half.comm_time == pytest.approx(s_full.comm_time / 2)

    def test_float16_quarters_comm(self, X):
        full, _ = build_cluster(X, P=4, cost=CostModel(t_wc=10.0))
        quarter, _ = build_cluster(X, P=4, cost=CostModel(t_wc=10.0),
                                   message_dtype=np.float16)
        assert quarter.w_step(0.1).comm_time == pytest.approx(
            full.w_step(0.1).comm_time / 4
        )

    def test_float32_accuracy_nearly_unchanged(self, X):
        # "with little effect on the accuracy" — E_Q after several
        # iterations must track the full-precision run closely.
        full, af = build_cluster(X, P=4, seed=3)
        low, al = build_cluster(X, P=4, seed=3, message_dtype=np.float32)
        mus = [1e-3 * 2**i for i in range(5)]
        for mu in mus:
            full.iteration(mu)
            low.iteration(mu)
        assert low.e_q(mus[-1]) == pytest.approx(full.e_q(mus[-1]), rel=0.02)

    def test_float16_still_trains(self, X):
        low, _ = build_cluster(X, P=4, seed=3, message_dtype=np.float16)
        mus = [1e-3 * 2**i for i in range(5)]
        eqs = []
        for mu in mus:
            low.iteration(mu)
            eqs.append(low.e_q(mu))
        assert np.isfinite(eqs[-1])
        assert eqs[-1] < eqs[0]

    def test_invariants_hold_under_precision_loss(self, X):
        low, _ = build_cluster(X, P=4, message_dtype=np.float16)
        low.w_step(0.1)
        assert low.model_copies_consistent()

    def test_parameters_are_float64_in_model(self, X):
        # The wire format is reduced; the model itself stays float64.
        low, adapter = build_cluster(X, P=3, message_dtype=np.float32)
        low.w_step(0.1)
        assert adapter.model.encoder.A.dtype == np.float64

    def test_p1_unaffected_by_dtype(self, X):
        # Self-hops never serialise, so P=1 results are bit-identical.
        a, ad_a = build_cluster(X, P=1, seed=5)
        b, ad_b = build_cluster(X, P=1, seed=5, message_dtype=np.float16)
        a.w_step(0.1)
        b.w_step(0.1)
        assert np.array_equal(ad_a.model.encoder.A, ad_b.model.encoder.A)


class TestMessageDtypeAllBackends:
    """``message_dtype`` is a backend capability now, not a sim special:
    the wall-clock engines cast at pack time on the pickle-free wire and
    produce bit-identical results to the simulators."""

    @pytest.mark.parametrize("name", BACKENDS)
    def test_rejected_when_not_float(self, name):
        with pytest.raises(ValueError, match="float"):
            get_backend(name)(message_dtype=np.int32)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_wire_precision_bit_identical_across_engines(self, X, name):
        ref, _ = fit(lambda: ba_setup(X), "sync", message_dtype=np.float32)
        got, history = fit(lambda: ba_setup(X), name, message_dtype=np.float32)
        assert history.records[-1].extra["message_dtype"] == "float32"
        pref, pgot = final_params(ref), final_params(got)
        for sid in pref:
            assert np.array_equal(pref[sid], pgot[sid]), (name, sid)

    def test_wire_precision_changes_bits_but_not_quality(self, X):
        full, h_full = fit(lambda: ba_setup(X), "multiprocess")
        low, h_low = fit(lambda: ba_setup(X), "multiprocess",
                         message_dtype=np.float32)
        pf, pl = final_params(full), final_params(low)
        assert any(not np.array_equal(pf[sid], pl[sid]) for sid in pf)
        assert h_low.records[-1].e_q == pytest.approx(
            h_full.records[-1].e_q, rel=0.02
        )

    def test_tcp_wire_bytes_shrink(self, X):
        _, h_full = fit(lambda: ba_setup(X), "tcp")
        _, h_low = fit(lambda: ba_setup(X), "tcp", message_dtype=np.float32)
        assert h_low.records[-1].extra["payload_bytes"] < (
            0.6 * h_full.records[-1].extra["payload_bytes"]
        )


class TestComputeDtype:
    """float32 end to end: model, shards, engines, wire, checkpoints."""

    def test_model_and_shards_carry_the_dtype(self, X):
        adapter, shards = ba_setup(X, dtype=np.float32)
        assert adapter.compute_dtype == np.float32
        assert adapter.model.encoder.A.dtype == np.float32
        assert shards[0].X.dtype == np.float32
        assert shards[0].F.dtype == np.float32

    @pytest.mark.parametrize("name", BACKENDS)
    def test_float32_ba_bit_identical_across_engines(self, X, name):
        ref, _ = fit(lambda: ba_setup(X, np.float32), "sync")
        got, history = fit(lambda: ba_setup(X, np.float32), name)
        assert history.records[-1].extra["compute_dtype"] == "float32"
        pref, pgot = final_params(ref), final_params(got)
        for sid in pref:
            assert pgot[sid].dtype == np.float32
            assert np.array_equal(pref[sid], pgot[sid]), (name, sid)

    def test_float32_ba_tracks_float64_e_q(self, X):
        _, h64 = fit(lambda: ba_setup(X, np.float64), "sync")
        _, h32 = fit(lambda: ba_setup(X, np.float32), "sync")
        assert h32.records[-1].e_q == pytest.approx(
            h64.records[-1].e_q, rel=1e-3
        )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_float32_net_trains_everywhere(self, X, name):
        adapter, history = fit(lambda: net_setup(X, np.float32), name)
        assert adapter.model.compute_dtype == np.float32
        assert np.isfinite(history.records[-1].e_q)
        assert history.records[-1].e_ba < history.records[0].e_ba * 1.5

    def test_float32_net_tracks_float64_e_q(self, X):
        _, h64 = fit(lambda: net_setup(X, np.float64), "sync")
        _, h32 = fit(lambda: net_setup(X, np.float32), "sync")
        assert h32.records[-1].e_q == pytest.approx(
            h64.records[-1].e_q, rel=1e-3
        )

    def test_float32_survives_checkpoint_restore(self, X, tmp_path):
        from repro.distributed.dataplane import ClusterState

        adapter, shards = ba_setup(X, dtype=np.float32)
        backend = get_backend("sync")(epochs=2, shuffle_within=False, seed=0)
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        path = tmp_path / "f32.ckpt"
        backend.checkpoint().save(path)
        backend.close()

        state = ClusterState.load(path)
        assert state.meta["compute_dtype"] == "float32"
        fresh = get_backend("sync")(epochs=2, shuffle_within=False, seed=0)
        fresh.restore(state)  # snapshot's own adapter: dtype preserved
        assert fresh.compute_dtype == np.float32
        assert fresh.dataplane.shards[0].X.dtype == np.float32
        stats = fresh.run_iteration(2e-3)
        assert np.isfinite(stats.e_q)
        params = final_params(fresh.adapter)
        assert all(theta.dtype == np.float32 for theta in params.values())
        fresh.close()

    def test_restore_refuses_dtype_mismatch(self, X):
        adapter, shards = ba_setup(X, dtype=np.float32)
        backend = get_backend("sync")(epochs=2, shuffle_within=False, seed=0)
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        state = backend.checkpoint()
        backend.close()

        adapter64, _ = ba_setup(X, dtype=np.float64)
        fresh = get_backend("sync")(epochs=2, shuffle_within=False, seed=0)
        with pytest.raises(ValueError, match="compute"):
            fresh.restore(state, adapter=adapter64)

    def test_ingest_enters_at_compute_dtype(self, X):
        adapter, shards = ba_setup(X, dtype=np.float32)
        backend = get_backend("sync")(epochs=1, shuffle_within=False, seed=0)
        backend.setup(adapter, shards)
        backend.ingest(0, np.asarray(X[:7], dtype=np.float64))
        backend.run_iteration(1e-3)
        assert backend.dataplane.shards[0].X.dtype == np.float32
        backend.close()
