"""Faults and resource hygiene on the wall-clock engines.

The simulated cluster has first-class fault *injection*
(:class:`FaultEvent`, `tests/distributed/test_faults.py`); the real
engines get fault *detection*: a worker process that dies mid-iteration
must fail the fit with a raised error and tear down every peer within a
bounded delay — no wedged processes blocked on ring receives that will
never arrive — and a fit that fails for any reason must leave no
``/dev/shm`` residue behind.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.core.penalty import GeometricSchedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import get_backend
from repro.distributed.backends.mp import _pack_shards
from repro.distributed.partition import make_shards, partition_indices

WALLCLOCK_BACKENDS = ["multiprocess", "tcp"]

#: Outer bound on "the backend notices and tears down"; the liveness
#: poll runs every 0.5 s, so this is generous.
FAULT_DETECTION_TIMEOUT_S = 20.0


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=4)


def ba_setup(X, P=3, n_bits=4, seed=0, adapter_cls=BAAdapter):
    ba = BinaryAutoencoder.linear(X.shape[1], n_bits)
    adapter = adapter_cls(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=seed)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_shards(X, adapter.features(X), Z, parts)


def shm_entries() -> set:
    """Names of shared-memory segments currently backing /dev/shm."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: fall back to "nothing observed"
        return set()


class ExplodingWUpdateAdapter(BAAdapter):
    """Raises inside the workers' W step — a deterministic mid-fit failure."""

    def w_update(self, *args, **kwargs):
        raise RuntimeError("injected w_update failure")


@pytest.mark.slow
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestWorkerDeath:
    def test_killed_worker_fails_fit_and_tears_down_peers(self, X, name):
        """SIGKILL one worker; the fit must raise and no peer may wedge."""
        adapter, shards = ba_setup(X)
        backend = get_backend(name)(seed=0, worker_timeout=FAULT_DETECTION_TIMEOUT_S)
        backend.setup(adapter, shards)
        pids = list(backend.worker_pids)
        assert len(pids) == 3
        shm_before = shm_entries()
        os.kill(pids[1], signal.SIGKILL)
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="died|failed|timed out"):
            # The survivors block on ring receives from the dead peer;
            # the coordinator must detect and abort, not wait forever.
            backend.run_iteration(1e-3)
        elapsed = time.monotonic() - t0
        assert elapsed < FAULT_DETECTION_TIMEOUT_S
        # Every peer is gone (no wedged processes)...
        assert backend.worker_pids == []
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)
        # ...and the fit's shared-memory segments were unlinked.
        assert shm_entries() <= shm_before
        # The backend stays usable: a fresh setup starts a clean pool.
        adapter2, shards2 = ba_setup(X)
        backend.setup(adapter2, shards2)
        stats = backend.run_iteration(1e-3)
        assert np.isfinite(stats.e_q)
        backend.close()

    def test_worker_dead_before_setup_is_detected(self, X, name):
        """A pool member dying between fits must fail the next setup."""
        adapter, shards = ba_setup(X)
        backend = get_backend(name)(seed=0, worker_timeout=FAULT_DETECTION_TIMEOUT_S)
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        backend.teardown()
        os.kill(backend.worker_pids[0], signal.SIGKILL)
        shm_before = shm_entries()
        adapter2, shards2 = ba_setup(X)
        with pytest.raises(RuntimeError, match="died|failed|timed out"):
            backend.setup(adapter2, shards2)
        assert backend.worker_pids == []
        assert shm_entries() <= shm_before
        backend.close()


@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestNoShmResidue:
    def test_failed_fit_leaves_no_segments(self, X, name):
        """A worker-side failure between shard shipping and teardown must
        unlink every shared-memory segment the fit created."""
        adapter, shards = ba_setup(X, adapter_cls=ExplodingWUpdateAdapter)
        shm_before = shm_entries()
        trainer = ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 2), backend=name, seed=0
        )
        with pytest.raises(RuntimeError, match="injected w_update failure"):
            trainer.fit(shards)
        assert trainer.backend._segments == []
        assert shm_entries() <= shm_before
        trainer.close()

    def test_setup_failure_after_packing_releases_segments(self, X, name, monkeypatch):
        """If setup dies after the segments exist (spawn raced a resource
        limit, a worker rejected the shard, ...), they must be unlinked
        before the error propagates — the finally-based unlink."""
        adapter, shards = ba_setup(X)
        backend = get_backend(name)(seed=0)
        shm_before = shm_entries()

        def boom(adapter_, descs):
            raise OSError("injected setup failure after packing")

        monkeypatch.setattr(backend, "_ship_setup", boom)
        with pytest.raises(OSError, match="injected setup failure"):
            backend.setup(adapter, shards)
        assert backend._segments == []
        assert shm_entries() <= shm_before
        backend.close()


class TestPackShards:
    def test_partial_packing_failure_unlinks_created_segments(self, X, monkeypatch):
        """_pack_shards itself must not leak segments it already created
        when a later shard fails to pack (e.g. /dev/shm fills up)."""
        from multiprocessing import shared_memory as shm_mod

        _, shards = ba_setup(X, P=3)
        real = shm_mod.SharedMemory
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise OSError("injected segment-creation failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(shm_mod, "SharedMemory", flaky)
        shm_before = shm_entries()
        with pytest.raises(OSError, match="injected segment-creation"):
            _pack_shards(shards)
        assert calls["n"] == 3  # two segments existed before the failure
        assert shm_entries() <= shm_before


# --------------------------------------------------------------- drop_shard
from dataclasses import dataclass

from repro.distributed.partition import Shard


@dataclass
class KillableShard(Shard):
    """A shard that marks its worker for death at a given mu.

    ``kill_in_z=False`` dies on the first W-step touch of the fatal
    iteration (mid-ring: survivors must abort and retry);
    ``kill_in_z=True`` dies in the Z step — after the worker's last ring
    send, so every survivor completes the attempt and the coordinator
    must keep those results instead of re-running the iteration.
    """

    kill_at_mu: float = -1.0
    kill_in_z: bool = False


class SuicidalAdapter(BAAdapter):
    """SIGKILLs its own worker process when it touches a marked shard —
    a deterministic mid-iteration machine death."""

    @staticmethod
    def _fatal(shard, mu, in_z):
        return (
            getattr(shard, "kill_at_mu", -1.0) >= 0
            and mu >= shard.kill_at_mu
            and getattr(shard, "kill_in_z", False) == in_z
        )

    def w_update(self, spec, theta, state, shard, mu, **kwargs):
        if self._fatal(shard, mu, in_z=False):
            os.kill(os.getpid(), signal.SIGKILL)
        return super().w_update(spec, theta, state, shard, mu, **kwargs)

    def z_update(self, shard, mu):
        if self._fatal(shard, mu, in_z=True):
            os.kill(os.getpid(), signal.SIGKILL)
        return super().z_update(shard, mu)


def killable_setup(X, P=4, seed=0, kills=None, kill_in_z=False):
    """BA problem whose shard p dies at mu for each (p, mu) in kills."""
    kills = dict(kills or {})
    adapter, shards = ba_setup(X, P=P, seed=seed, adapter_cls=SuicidalAdapter)
    return adapter, [
        KillableShard(
            X=s.X, F=s.F, Z=s.Z, indices=s.indices,
            kill_at_mu=kills.get(p, -1.0), kill_in_z=kill_in_z,
        )
        for p, s in enumerate(shards)
    ]


@pytest.mark.slow
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestDropShard:
    def test_fit_survives_mid_iteration_kill(self, X, name):
        """The acceptance headline: a SIGKILL'd worker loses its shard,
        not the run — the fit completes on the survivors."""
        adapter, shards = killable_setup(X, P=4, kills={2: 2e-3})
        with ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 4), backend=name, seed=0,
            fault_policy="drop_shard",
            backend_options={"worker_timeout": FAULT_DETECTION_TIMEOUT_S * 3},
        ) as trainer:
            history = trainer.fit(shards)
        assert len(history) == 4  # every scheduled iteration completed
        assert [r.extra["shards_lost"] for r in history.records] == [0, 1, 0, 0]
        assert [r.extra["n_machines"] for r in history.records] == [4, 3, 3, 3]
        assert all(np.isfinite(r.e_q) for r in history.records)
        # The assembled model is sane: every submodel finite.
        for spec in adapter.submodel_specs():
            assert np.all(np.isfinite(adapter.get_params(spec)))

    def test_double_fault_across_iterations(self, X, name):
        adapter, shards = killable_setup(X, P=4, kills={1: 2e-3, 3: 4e-3})
        with ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 4), backend=name, seed=0,
            fault_policy="drop_shard",
            backend_options={"worker_timeout": FAULT_DETECTION_TIMEOUT_S * 3},
        ) as trainer:
            history = trainer.fit(shards)
        assert len(history) == 4
        assert sum(r.extra["shards_lost"] for r in history.records) == 2
        assert history.records[-1].extra["n_machines"] == 2
        assert np.isfinite(history.records[-1].e_q)

    def test_pool_rebuilds_for_next_fit(self, X, name):
        """A pool degraded by a retirement must serve the next fit at
        full strength (fresh workers, full machine count)."""
        adapter, shards = killable_setup(X, P=3, kills={1: 2e-3})
        backend = get_backend(name)(
            seed=0, fault_policy="drop_shard",
            worker_timeout=FAULT_DETECTION_TIMEOUT_S * 3,
        )
        trainer = ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 2), backend=backend,
        )
        try:
            trainer.fit(shards)
            assert len(backend.worker_pids) == 2
            adapter2, shards2 = ba_setup(X, P=3)
            trainer2 = ParMACTrainer(
                adapter2, GeometricSchedule(1e-3, 2.0, 2), backend=backend
            )
            history = trainer2.fit(shards2)
            assert len(backend.worker_pids) == 3
            assert [r.extra["shards_lost"] for r in history.records] == [0, 0]
            assert np.isfinite(history.records[-1].e_q)
        finally:
            backend.close()

    def test_fail_fast_still_default(self, X, name):
        """Without opting into drop_shard, a death still fails the fit."""
        adapter, shards = killable_setup(X, P=3, kills={1: 1e-3})
        backend = get_backend(name)(
            seed=0, worker_timeout=FAULT_DETECTION_TIMEOUT_S
        )
        backend.setup(adapter, shards)
        with pytest.raises(RuntimeError, match="died|failed|timed out"):
            backend.run_iteration(1e-3)
        assert backend.worker_pids == []
        backend.close()

    def test_arrival_for_dead_machine_is_dropped(self, X, name):
        """Streaming + drop_shard compose: an arrival scheduled for a
        machine that has since died is dropped with its shard, while
        arrivals for survivors keep landing."""
        from repro.data.synthetic import make_clustered

        X_new = make_clustered(10, X.shape[1], n_clusters=3, rng=9)
        adapter, shards = killable_setup(X, P=4, kills={2: 2e-3})
        arrivals = {2: [(2, X_new), (0, X_new)], 3: [(2, X_new)]}
        with ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 4), backend=name, seed=0,
            fault_policy="drop_shard",
            backend_options={"worker_timeout": FAULT_DETECTION_TIMEOUT_S * 3},
        ) as trainer:
            history = trainer.fit(shards, arrivals=arrivals)
        assert len(history) == 4
        assert sum(r.extra["shards_lost"] for r in history.records) == 1
        # Machine 2 died at iteration 1; only machine 0's batch lands.
        assert [r.extra["rows_ingested"] for r in history.records] == [0, 0, 10, 0]

    def test_death_after_last_send_keeps_completed_results(self, X, name):
        """A worker dying in its Z step — after its last ring send — lets
        every survivor finish the attempt; the coordinator must accept
        those results (and still retire the shard) rather than silently
        training the same mu twice."""
        adapter, shards = killable_setup(X, P=3, kills={1: 2e-3}, kill_in_z=True)
        with ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 4), backend=name, seed=0,
            fault_policy="drop_shard",
            backend_options={"worker_timeout": FAULT_DETECTION_TIMEOUT_S * 3},
        ) as trainer:
            history = trainer.fit(shards)
        assert len(history) == 4
        assert [r.extra["shards_lost"] for r in history.records] == [0, 1, 0, 0]
        assert [r.extra["n_machines"] for r in history.records] == [3, 2, 2, 2]
        assert all(np.isfinite(r.e_q) for r in history.records)

    def test_model_holder_death_after_last_send(self, X, name):
        """When the model-holding rank (lowest) dies after its last ring
        send, the completed attempt must still be accepted — the model is
        fetched from a survivor (every worker holds the final copies)."""
        adapter, shards = killable_setup(X, P=3, kills={0: 2e-3}, kill_in_z=True)
        with ParMACTrainer(
            adapter, GeometricSchedule(1e-3, 2.0, 4), backend=name, seed=0,
            fault_policy="drop_shard",
            backend_options={"worker_timeout": FAULT_DETECTION_TIMEOUT_S * 3},
        ) as trainer:
            history = trainer.fit(shards)
        assert len(history) == 4
        assert [r.extra["shards_lost"] for r in history.records] == [0, 1, 0, 0]
        assert [r.extra["n_machines"] for r in history.records] == [3, 2, 2, 2]
        for spec in adapter.submodel_specs():
            assert np.all(np.isfinite(adapter.get_params(spec)))


@pytest.mark.slow
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestCheckpointSurvivesKill:
    def test_checkpoint_sigkill_restore_reaches_same_model(self, X, name, tmp_path):
        """The restartability contract: snapshot between iterations,
        SIGKILL every worker process (the checkpointed fit dies for
        real), restore into a brand-new backend, and finish — the final
        submodels must match the uninterrupted run bit for bit."""
        mus = [1e-3 * 2.0**i for i in range(5)]
        cut = 2

        def fresh_backend():
            from repro.distributed.backends import get_backend

            return get_backend(name)(epochs=2, shuffle_within=True, seed=0)

        adapter, shards = ba_setup(X)
        with fresh_backend() as backend:
            backend.setup(adapter, shards)
            for mu in mus:
                backend.run_iteration(mu)
        ref = {
            s.sid: adapter.get_params(s).copy()
            for s in adapter.submodel_specs()
        }

        path = tmp_path / "killed.ckpt"
        adapter2, shards2 = ba_setup(X)
        backend = fresh_backend()
        backend.setup(adapter2, shards2)
        for mu in mus[:cut]:
            backend.run_iteration(mu)
        backend.checkpoint().save(path)
        pids = list(backend.worker_pids)
        assert pids
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + FAULT_DETECTION_TIMEOUT_S
        while backend.worker_pids and time.monotonic() < deadline:
            time.sleep(0.05)
        backend.close(force=True)

        from repro.distributed.dataplane import ClusterState

        with fresh_backend() as backend:
            backend.restore(ClusterState.load(path))
            for mu in mus[cut:]:
                backend.run_iteration(mu)
            got = {
                s.sid: backend.adapter.get_params(s).copy()
                for s in backend.adapter.submodel_specs()
            }
        assert set(got) == set(ref)
        for sid in ref:
            assert np.array_equal(got[sid], ref[sid]), (name, sid)


@pytest.mark.slow
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestIdleKillRecovery:
    def test_drop_shard_survives_kill_between_iterations(self, X, name):
        """A worker SIGKILLed while *idle* (between iterations) must not
        wedge the next iteration's recovery. Historically this could
        strand every survivor's response: the shared result queue's
        cross-process write lock died with the worker if the kill landed
        inside the feeder's send window; per-worker response channels
        have no shared lock to leak."""
        adapter, shards = ba_setup(X, P=4)
        backend = get_backend(name)(
            seed=0, fault_policy="drop_shard",
            worker_timeout=FAULT_DETECTION_TIMEOUT_S * 3,
        )
        try:
            backend.setup(adapter, shards)
            backend.run_iteration(1e-3)
            os.kill(backend.worker_pids[-1], signal.SIGKILL)
            t0 = time.monotonic()
            stats = backend.run_iteration(2e-3)
            assert time.monotonic() - t0 < FAULT_DETECTION_TIMEOUT_S * 3
            assert stats.shards_lost == 1
            assert stats.n_machines == 3
            stats = backend.run_iteration(4e-3)
            assert np.isfinite(stats.e_q) and stats.shards_lost == 0
        finally:
            backend.close()
