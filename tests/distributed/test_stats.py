"""Accounting invariants of the W/Z step statistics."""

import pytest

from repro.distributed.costmodel import CostModel

from .test_cluster import build_cluster


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=40)


class TestWStepStats:
    def test_per_machine_sums_match_totals(self, X):
        cluster, _ = build_cluster(X, P=4, cost=CostModel(t_wc=10.0))
        stats = cluster.w_step(0.1)
        assert sum(stats.per_machine_comp.values()) == pytest.approx(stats.comp_time)
        assert sum(stats.per_machine_comm.values()) == pytest.approx(stats.comm_time)

    def test_idle_time_nonnegative(self, X):
        for engine in ("sync", "async"):
            cluster, _ = build_cluster(X, P=3, engine=engine,
                                       cost=CostModel(t_wc=25.0))
            stats = cluster.w_step(0.1)
            assert stats.idle_time >= 0.0

    def test_sync_sim_time_bounds(self, X):
        # Slowest-machine bound: comp+comm of any machine <= sim_time * 1;
        # sim time <= total work (fully serialised upper bound).
        cluster, _ = build_cluster(X, P=4, cost=CostModel(t_wc=5.0))
        stats = cluster.w_step(0.1)
        busiest = max(
            stats.per_machine_comp[p] + stats.per_machine_comm[p]
            for p in stats.per_machine_comp
        )
        assert stats.sim_time >= busiest - 1e-9
        assert stats.sim_time <= stats.comp_time + stats.comm_time + 1e-9

    def test_ticks_counted_sync_only(self, X):
        s, _ = build_cluster(X, P=3)
        a, _ = build_cluster(X, P=3, engine="async")
        assert s.w_step(0.1).ticks > 0
        assert a.w_step(0.1).ticks == 0

    def test_no_comm_cost_zero_comm_time(self, X):
        cluster, _ = build_cluster(X, P=4, cost=CostModel(t_wc=0.0))
        stats = cluster.w_step(0.1)
        assert stats.comm_time == 0.0
        assert stats.bytes_sent > 0  # bytes counted regardless of cost


class TestZStepStats:
    def test_per_machine_times_cover_all_machines(self, X):
        cluster, _ = build_cluster(X, P=4)
        cluster.w_step(0.1)
        z = cluster.z_step(0.1)
        assert set(z.per_machine_time) == set(cluster.machines)
        assert z.sim_time == max(z.per_machine_time.values())

    def test_converged_z_step_reports_zero_changes(self, X):
        cluster, _ = build_cluster(X, P=3, seed=2)
        # Drive mu very high: Z snaps to h(X) and stays there.
        for mu in (1e-3, 1.0, 1e6):
            cluster.iteration(mu)
        z = cluster.z_step(1e6)
        assert z.z_changes == 0
