"""Property-based round trips and corruption handling for the frame codec.

The TCP ring's correctness rests on the codec being an exact inverse of
itself over every dtype/shape/counter combination an adapter could
produce, and on malformed bytes *failing loudly* — a reader facing a
truncated or corrupt frame must get a :class:`ProtocolError`, never an
indefinite block or a silently wrong array.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.framing import (
    FRAME_MAGIC,
    KIND_BATCH,
    KIND_HELLO,
    KIND_INGEST,
    KIND_JOIN,
    KIND_SHARD_RETIRED,
    KIND_WELCOME,
    FrameDecoder,
    ProtocolError,
    decode_batch,
    decode_hello,
    decode_ingest,
    decode_join,
    decode_shard_retired,
    decode_welcome,
    encode_batch,
    encode_frame,
    encode_hello,
    encode_ingest,
    encode_join,
    encode_shard_retired,
    encode_welcome,
)
from repro.distributed.interfaces import SubmodelSpec
from repro.distributed.messages import IngestMessage, ShardRetired, SubmodelMessage
from repro.optim.sgd import SGDState

DTYPES = ["<f8", "<f4", "<f2", "<i8", "<i4", "<i2", "<u1", ">f8", ">f4"]


def unwrap(frame: bytes) -> tuple[int, bytes]:
    """Parse exactly one complete frame."""
    decoder = FrameDecoder()
    frames = decoder.feed(frame)
    assert len(frames) == 1 and decoder.pending == 0
    return frames[0]


# Strategy: one wire-ready message with a random dtype/shape/counter mix.
messages = st.builds(
    lambda sid, dtype, shape, counter, epochs_left, t, n_updates, fill: SubmodelMessage(
        spec=SubmodelSpec(sid=sid, kind="prop", index=None),
        theta=np.full(shape, fill, dtype=np.dtype(dtype)),
        sgd_state=SGDState(t=t, n_updates=n_updates),
        counter=counter,
        epochs_left=epochs_left,
    ),
    sid=st.integers(0, 2**31 - 1),
    dtype=st.sampled_from(DTYPES),
    shape=st.lists(st.integers(0, 7), min_size=0, max_size=3).map(tuple),
    counter=st.integers(0, 2**31 - 1),
    epochs_left=st.integers(-1, 2**15),
    t=st.integers(0, 2**40),
    n_updates=st.integers(0, 2**40),
    fill=st.integers(0, 100),
)


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(messages, min_size=0, max_size=6))
    def test_batch_roundtrip_identical(self, msgs):
        spec_by_sid = {m.spec.sid: m.spec for m in msgs}
        kind, payload = unwrap(encode_batch(msgs))
        assert kind == KIND_BATCH
        decoded = decode_batch(payload, spec_by_sid)
        assert len(decoded) == len(msgs)
        for original, copy in zip(msgs, decoded):
            assert copy.spec == original.spec
            assert copy.counter == original.counter
            assert copy.epochs_left == original.epochs_left
            assert copy.sgd_state.t == original.sgd_state.t
            assert copy.sgd_state.n_updates == original.sgd_state.n_updates
            assert copy.theta.dtype == original.theta.dtype
            assert copy.theta.shape == original.theta.shape
            assert np.array_equal(copy.theta, original.theta)

    @settings(max_examples=40, deadline=None)
    @given(messages, st.integers(1, 64))
    def test_decoder_reassembles_any_byte_split(self, msg, chunk):
        # Frames arrive from sockets in arbitrary chunks; feeding the
        # stream byte-split at any granularity yields the same frames.
        wire = encode_batch([msg]) + encode_hello(3)
        decoder = FrameDecoder()
        frames = []
        for i in range(0, len(wire), chunk):
            frames.extend(decoder.feed(wire[i : i + chunk]))
        assert [k for k, _ in frames] == [KIND_BATCH, KIND_HELLO]
        assert decoder.pending == 0
        decoder.eof()  # clean EOF at a frame boundary is fine
        (decoded,) = decode_batch(frames[0][1], {msg.spec.sid: msg.spec})
        assert np.array_equal(decoded.theta, msg.theta)

    def test_hello_roundtrip(self):
        kind, payload = unwrap(encode_hello(41))
        assert kind == KIND_HELLO
        assert decode_hello(payload) == 41

    def test_theta_copy_is_writable_and_independent(self):
        msg = SubmodelMessage(
            spec=SubmodelSpec(0, "w"), theta=np.arange(5.0), sgd_state=SGDState()
        )
        kind, payload = unwrap(encode_batch([msg]))
        (decoded,) = decode_batch(payload, {0: msg.spec})
        decoded.theta[0] = 99.0  # frombuffer views are read-only; ours must not be
        assert msg.theta[0] == 0.0


class TestMalformedInput:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(messages, min_size=1, max_size=3), st.data())
    def test_truncated_payload_raises(self, msgs, data):
        _, payload = unwrap(encode_batch(msgs))
        cut = data.draw(st.integers(0, max(len(payload) - 1, 0)))
        spec_by_sid = {m.spec.sid: m.spec for m in msgs}
        with pytest.raises(ProtocolError):
            decode_batch(payload[:cut], spec_by_sid)

    def test_trailing_garbage_raises(self):
        msg = SubmodelMessage(
            spec=SubmodelSpec(0, "w"), theta=np.arange(3.0), sgd_state=SGDState()
        )
        _, payload = unwrap(encode_batch([msg]))
        with pytest.raises(ProtocolError, match="trailing"):
            decode_batch(payload + b"\x00\x01", {0: msg.spec})

    def test_unknown_sid_raises(self):
        msg = SubmodelMessage(
            spec=SubmodelSpec(7, "w"), theta=np.arange(3.0), sgd_state=SGDState()
        )
        _, payload = unwrap(encode_batch([msg]))
        with pytest.raises(ProtocolError, match="sid 7"):
            decode_batch(payload, {})

    def test_bad_magic_raises(self):
        frame = bytearray(encode_hello(0))
        frame[0:2] = b"XX"
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(bytes(frame))

    def test_bad_version_raises(self):
        frame = bytearray(encode_hello(0))
        frame[2] = 200
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(bytes(frame))

    def test_unknown_kind_raises(self):
        frame = bytearray(encode_hello(0))
        frame[3] = 99
        with pytest.raises(ProtocolError, match="kind"):
            FrameDecoder().feed(bytes(frame))
        with pytest.raises(ProtocolError, match="kind"):
            encode_frame(99, b"")

    def test_absurd_length_fails_fast(self):
        # A corrupt length field must not make a reader buffer gigabytes
        # waiting for bytes that will never come.
        import struct

        frame = struct.pack("<2sBBI", FRAME_MAGIC, 1, KIND_HELLO, 1 << 31)
        with pytest.raises(ProtocolError, match="cap"):
            FrameDecoder().feed(frame)

    def test_eof_mid_frame_raises(self):
        # A peer dying mid-send must not hang the reader: the stream's
        # end inside a frame is a protocol error.
        wire = encode_batch(
            [
                SubmodelMessage(
                    spec=SubmodelSpec(0, "w"),
                    theta=np.arange(16.0),
                    sgd_state=SGDState(),
                )
            ]
        )
        decoder = FrameDecoder()
        assert decoder.feed(wire[: len(wire) // 2]) == []
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.eof()

    def test_corrupt_dtype_raises(self):
        msg = SubmodelMessage(
            spec=SubmodelSpec(0, "w"), theta=np.arange(3.0), sgd_state=SGDState()
        )
        _, payload = unwrap(encode_batch([msg]))
        corrupt = bytearray(payload)
        # The dtype string starts right after the count + message header;
        # stamp it with bytes numpy cannot parse as a dtype.
        start = 4 + 30  # _COUNT.size + _MSG_HEADER.size
        corrupt[start : start + 3] = b"\xff\xfe\xfd"
        with pytest.raises(ProtocolError):
            decode_batch(bytes(corrupt), {0: msg.spec})


class TestControlFrames:
    """INGEST / SHARD_RETIRED: the streaming & fault control plane."""

    def make_ingest(self, n=7, d=5, bits=4):
        rng = np.random.default_rng(0)
        return IngestMessage(
            machine=3,
            X=rng.normal(size=(n, d)),
            F=rng.normal(size=(n, d)).astype(np.float32),
            Z=(rng.random(size=(n, bits)) > 0.5).astype(np.uint8),
            indices=np.arange(100, 100 + n),
        )

    def test_ingest_roundtrip_identical(self):
        msg = self.make_ingest()
        kind, payload = unwrap(encode_ingest(msg))
        assert kind == KIND_INGEST
        out = decode_ingest(payload)
        assert out.machine == msg.machine
        for name in ("X", "F", "Z", "indices"):
            a, b = getattr(msg, name), getattr(out, name)
            assert a.dtype == b.dtype and np.array_equal(a, b), name

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_truncated_ingest_raises(self, data):
        _, payload = unwrap(encode_ingest(self.make_ingest()))
        cut = data.draw(st.integers(0, len(payload) - 1))
        with pytest.raises(ProtocolError):
            decode_ingest(payload[:cut])

    def test_inconsistent_ingest_lengths_rejected(self):
        good = self.make_ingest()
        msg = IngestMessage(
            machine=good.machine, X=good.X, F=good.F, Z=good.Z,
            indices=good.indices[:-1],
        )
        with pytest.raises(ProtocolError, match="inconsistent"):
            encode_ingest(msg)

    def test_ingest_trailing_garbage_raises(self):
        _, payload = unwrap(encode_ingest(self.make_ingest()))
        with pytest.raises(ProtocolError, match="trailing"):
            decode_ingest(payload + b"\x00")

    def test_shard_retired_roundtrip(self):
        kind, payload = unwrap(
            encode_shard_retired(ShardRetired(machine=5, rows_lost=1234))
        )
        assert kind == KIND_SHARD_RETIRED
        assert decode_shard_retired(payload) == ShardRetired(5, 1234)

    def test_shard_retired_bad_length_raises(self):
        with pytest.raises(ProtocolError, match="bytes"):
            decode_shard_retired(b"\x00\x01")

    def test_overflowing_batch_dims_fail_fast(self):
        # A crafted/corrupt dim whose byte size overflows int64 must hit
        # the cap check, not wrap into a tiny (or negative) read.
        import struct

        msg = SubmodelMessage(
            spec=SubmodelSpec(0, "w"), theta=np.zeros(3), sgd_state=SGDState()
        )
        _, payload = unwrap(encode_batch([msg]))
        corrupt = bytearray(payload)
        # count(4) | msg header(30) | dtype "<f8"(3) | dim (q) ...
        struct.pack_into("<q", corrupt, 4 + 30 + 3, 1 << 62)
        with pytest.raises(ProtocolError, match="cap"):
            decode_batch(bytes(corrupt), {0: msg.spec})

    def test_overflowing_ingest_dims_fail_fast(self):
        import struct

        msg = self.make_ingest(n=2, d=3)
        _, payload = unwrap(encode_ingest(msg))
        corrupt = bytearray(payload)
        # machine(4) | array header(2) | dtype "<f8"(3) | first dim (q) ...
        struct.pack_into("<q", corrupt, 4 + 2 + 3, 1 << 62)
        with pytest.raises(ProtocolError, match="cap"):
            decode_ingest(bytes(corrupt))


class TestJoinWelcomeFrames:
    """The elastic handshake frames (section 4.3, streaming form 2)."""

    @given(rank=st.integers(0, 2**32 - 1))
    def test_join_roundtrip(self, rank):
        kind, payload = unwrap(encode_join(rank))
        assert kind == KIND_JOIN
        assert decode_join(payload) == rank

    @given(donor=st.integers(0, 2**32 - 1), n=st.integers(0, 2**32 - 1))
    def test_welcome_roundtrip(self, donor, n):
        kind, payload = unwrap(encode_welcome(donor, n))
        assert kind == KIND_WELCOME
        assert decode_welcome(payload) == (donor, n)

    def test_join_bad_length_raises(self):
        with pytest.raises(ProtocolError, match="bytes"):
            decode_join(b"\x00\x01\x02")

    def test_welcome_bad_length_raises(self):
        with pytest.raises(ProtocolError, match="bytes"):
            decode_welcome(b"\x00\x01\x02\x04")

    def test_welcome_model_handoff_is_framed(self):
        # The donor's hand-off: WELCOME then a BATCH of final submodels —
        # two ordinary frames any FrameDecoder can split, no pickle.
        specs = [SubmodelSpec(sid, "w") for sid in range(3)]
        finals = [
            SubmodelMessage.final(s, np.arange(4, dtype=np.float64) + s.sid)
            for s in specs
        ]
        blob = encode_welcome(7, len(finals)) + encode_batch(finals)
        decoder = FrameDecoder()
        frames = decoder.feed(blob)
        assert [k for k, _ in frames] == [KIND_WELCOME, KIND_BATCH]
        assert decoder.pending == 0
        donor, n = decode_welcome(frames[0][1])
        assert (donor, n) == (7, 3)
        got = decode_batch(frames[1][1], {s.sid: s for s in specs})
        assert len(got) == 3
        for orig, back in zip(finals, got):
            assert back.spec.sid == orig.spec.sid
            assert np.array_equal(back.theta, orig.theta)
