"""Batched co-resident-unit W step (ROADMAP hot path).

The contract, as tests:

* batched runs are **bit-identical across every registered engine**
  (group composition is protocol-deterministic — convoys, not timing);
* batched vs the legacy per-unit path agrees to machine precision (the
  stacked GEMM and the per-unit GEMV associate their reductions
  differently, so exact bit equality between the two *kernels* is not a
  BLAS guarantee — parity is asserted at float tolerance, plus exact
  agreement of every SGD step count);
* the knob semantics: ``batch_units`` engages only with
  ``shuffle_within=False``, falls back silently otherwise, and is
  surfaced per iteration through ``IterationStats``/history extras.
"""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.core.penalty import GeometricSchedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import available_backends, get_backend
from repro.distributed.batching import (
    BatchAccumulator,
    GroupTable,
    supports_unit_batching,
)
from repro.distributed.messages import SubmodelMessage
from repro.distributed.partition import make_shards, partition_indices
from repro.distributed.protocol import home_assignment
from repro.nets.adapter import NetAdapter, make_net_shards
from repro.nets.deepnet import DeepNet
from repro.nets.mac_net import MACTrainerNet
from repro.optim.sgd import SGDState

BACKENDS = available_backends()
REFERENCE = "sync"


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=4)


@pytest.fixture(scope="module")
def net_problem():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 4))
    Y = np.sin(X @ rng.normal(size=(4, 2)))
    return X, Y


def ba_setup(X, P=3, n_bits=4, seed=0):
    ba = BinaryAutoencoder.linear(X.shape[1], n_bits)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=seed)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_shards(X, adapter.features(X), Z, parts)


def net_setup(X, Y, P=3, seed=0):
    net = DeepNet.create([4, 6, 2], rng=1)
    adapter = NetAdapter(net, z_steps=5)
    Zs = MACTrainerNet(net, seed=seed).init_coords(X)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_net_shards(X, Y, Zs, parts)


def final_params(adapter):
    return {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}


def run_fit(make_problem, backend, *, batch_units, shuffle_within=False,
            epochs=2, n_iters=4):
    adapter, shards = make_problem()
    trainer = ParMACTrainer(
        adapter,
        GeometricSchedule(1e-3, 2.0, n_iters),
        backend=backend,
        epochs=epochs,
        shuffle_within=shuffle_within,
        seed=0,
        backend_options={"batch_units": batch_units},
    )
    history = trainer.fit(shards)
    trainer.close()
    return final_params(adapter), history


class TestAdapterKernels:
    """w_update_batch against the per-unit kernel, at the adapter level."""

    def test_net_batch_matches_per_unit(self, net_problem):
        X, Y = net_problem
        adapter, shards = net_setup(X, Y, P=1)
        shard = shards[0]
        specs = [s for s in adapter.submodel_specs() if s.index[0] == 0]
        thetas = [adapter.get_params(s) for s in specs]
        per_unit, states_u = [], []
        for spec, theta in zip(specs, thetas):
            st = SGDState()
            per_unit.append(
                adapter.w_update(spec, theta.copy(), st, shard, 1.0,
                                 batch_size=32, shuffle=False, rng=None)
            )
            states_u.append(st)
        states_b = [SGDState() for _ in specs]
        batched = adapter.w_update_batch(
            specs, [t.copy() for t in thetas], states_b, shard, 1.0,
            batch_size=32, shuffle=False, rng=None,
        )
        for a, b in zip(per_unit, batched):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)
        # The carried schedules must advance exactly identically.
        assert [s.t for s in states_u] == [s.t for s in states_b]
        assert [s.n_updates for s in states_u] == [s.n_updates for s in states_b]

    @pytest.mark.parametrize("kind", ["enc", "dec"])
    def test_ba_batch_matches_per_unit(self, X, kind):
        adapter, shards = ba_setup(X, P=1)
        shard = shards[0]
        specs = [s for s in adapter.submodel_specs() if s.kind == kind]
        thetas = [adapter.get_params(s) for s in specs]
        per_unit = [
            adapter.w_update(spec, theta.copy(), SGDState(), shard, 0.5,
                             batch_size=25, shuffle=False, rng=None)
            for spec, theta in zip(specs, thetas)
        ]
        batched = adapter.w_update_batch(
            specs, [t.copy() for t in thetas], [SGDState() for _ in specs],
            shard, 0.5, batch_size=25, shuffle=False, rng=None,
        )
        for a, b in zip(per_unit, batched):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_shuffle_demands_per_unit_path(self, net_problem):
        X, Y = net_problem
        adapter, shards = net_setup(X, Y, P=1)
        specs = adapter.submodel_specs()[:2]
        with pytest.raises(ValueError, match="shuffle"):
            adapter.w_update_batch(
                specs, [adapter.get_params(s) for s in specs],
                [SGDState(), SGDState()], shards[0], 1.0,
                batch_size=32, shuffle=True, rng=np.random.default_rng(0),
            )

    def test_mixed_layers_rejected(self, net_problem):
        X, Y = net_problem
        adapter, shards = net_setup(X, Y, P=1)
        by_layer = {}
        for s in adapter.submodel_specs():
            by_layer.setdefault(s.index[0], s)
        mixed = list(by_layer.values())
        assert len(mixed) > 1
        with pytest.raises(ValueError, match="layer"):
            adapter.w_update_batch(
                mixed, [adapter.get_params(s) for s in mixed],
                [SGDState() for _ in mixed], shards[0], 1.0,
                batch_size=32, shuffle=False, rng=None,
            )

    def test_both_adapters_advertise_batching(self, X, net_problem):
        Xn, Y = net_problem
        assert supports_unit_batching(ba_setup(X)[0])
        assert supports_unit_batching(net_setup(Xn, Y)[0])


class TestGroupAccumulator:
    """Convoy bookkeeping: protocol-deterministic groups, completeness."""

    def _table(self, X):
        adapter, _ = ba_setup(X)
        homes = home_assignment(adapter.n_submodels, 3)
        return adapter, GroupTable(adapter, homes)

    def test_groups_split_by_home_and_key(self, X):
        adapter, table = self._table(X)
        # 8 submodels over 3 machines: blocks {0,1,2}, {3,4,5}, {6,7} —
        # block 1 spans the enc/dec boundary, so it splits in two.
        sizes = sorted(table.group_size.values())
        assert sum(sizes) == adapter.n_submodels
        assert table.group_of[3] != table.group_of[4]  # enc vs dec, same home
        assert table.group_of[4] == table.group_of[5]

    def test_completion_only_when_full_and_sid_sorted(self, X):
        adapter, table = self._table(X)
        acc = BatchAccumulator(table)
        specs = {s.sid: s for s in adapter.submodel_specs()}
        msg = lambda sid: SubmodelMessage(
            spec=specs[sid], theta=np.zeros(3), counter=1
        )
        assert acc.add(msg(1)) is None
        assert acc.add(msg(2)) is None
        assert acc.n_pending == 2
        done = acc.add(msg(0))
        assert [m.spec.sid for m in done] == [0, 1, 2]
        assert acc.n_pending == 0

    def test_counters_keep_convoys_apart(self, X):
        adapter, table = self._table(X)
        acc = BatchAccumulator(table)
        specs = {s.sid: s for s in adapter.submodel_specs()}
        a = SubmodelMessage(spec=specs[4], theta=np.zeros(3), counter=1)
        b = SubmodelMessage(spec=specs[5], theta=np.zeros(3), counter=2)
        assert acc.add(a) is None
        assert acc.add(b) is None  # same group, different visit: no mix
        assert acc.n_pending == 2


class TestEngineParity:
    """The engine-level contract over every registered backend."""

    @pytest.mark.parametrize("name", BACKENDS)
    def test_batched_bit_identical_across_engines_ba(self, X, name):
        ref, _ = run_fit(lambda: ba_setup(X), REFERENCE, batch_units=True)
        got, history = run_fit(lambda: ba_setup(X), name, batch_units=True)
        assert history.records[-1].extra["batched_w"] is True
        for sid in ref:
            assert np.array_equal(ref[sid], got[sid]), (name, sid)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_batched_bit_identical_across_engines_net(self, net_problem, name):
        Xn, Y = net_problem
        ref, _ = run_fit(lambda: net_setup(Xn, Y), REFERENCE, batch_units=True)
        got, history = run_fit(lambda: net_setup(Xn, Y), name, batch_units=True)
        assert history.records[-1].extra["batched_w"] is True
        for sid in ref:
            assert np.array_equal(ref[sid], got[sid]), (name, sid)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_batched_matches_legacy_to_machine_precision(self, net_problem, name):
        Xn, Y = net_problem
        batched, _ = run_fit(lambda: net_setup(Xn, Y), name, batch_units=True)
        legacy, history = run_fit(lambda: net_setup(Xn, Y), name, batch_units=False)
        assert history.records[-1].extra["batched_w"] is False
        for sid in batched:
            np.testing.assert_allclose(
                batched[sid], legacy[sid], rtol=1e-7, atol=1e-9,
                err_msg=f"{name} sid {sid}",
            )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_shuffle_within_falls_back_to_per_unit(self, X, name):
        # With per-unit draw order demanded, the knob must change nothing:
        # batched-on and batched-off runs are bit-identical.
        on, history = run_fit(lambda: ba_setup(X), name, batch_units=True,
                              shuffle_within=True)
        off, _ = run_fit(lambda: ba_setup(X), name, batch_units=False,
                         shuffle_within=True)
        assert history.records[-1].extra["batched_w"] is False
        for sid in on:
            assert np.array_equal(on[sid], off[sid]), (name, sid)

    def test_w_time_surfaced_on_sim_engines(self, X):
        _, history = run_fit(lambda: ba_setup(X), "sync", batch_units=True)
        rec = history.records[-1]
        assert rec.extra["w_time"] > 0
        assert rec.extra["z_time"] > 0
        assert rec.extra["compute_dtype"] == "float64"
        assert rec.extra["message_dtype"] is None

    def test_checkpoint_refuses_batch_units_flip(self, X):
        # Batched and per-unit kernels agree only to rounding, so resuming
        # under the other knob cannot be bit-identical — it must raise.
        adapter, shards = ba_setup(X)
        backend = get_backend("sync")(epochs=1, shuffle_within=False,
                                      batch_units=True, seed=0)
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        state = backend.checkpoint()
        backend.close()
        other = get_backend("sync")(epochs=1, shuffle_within=False,
                                    batch_units=False, seed=0)
        with pytest.raises(ValueError, match="batch_units"):
            other.restore(state)
