import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.topology import RingTopology


class TestConstruction:
    def test_identity_ring(self):
        ring = RingTopology.identity(4)
        assert [ring.successor(p) for p in range(4)] == [1, 2, 3, 0]

    def test_single_machine_self_loop(self):
        ring = RingTopology.identity(1)
        assert ring.successor(0) == 0

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RingTopology([0, 1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RingTopology([])

    @given(st.integers(1, 40), st.integers(0, 10**6))
    @settings(max_examples=30)
    def test_random_ring_is_single_cycle(self, P, seed):
        ring = RingTopology.random(range(P), rng=seed)
        ring.validate()  # raises on sub-cycles / missing machines

    def test_random_ring_is_hamiltonian_cycle_networkx(self):
        ring = RingTopology.random(range(12), rng=0)
        G = nx.DiGraph((p, ring.successor(p)) for p in range(12))
        cycles = list(nx.simple_cycles(G))
        assert len(cycles) == 1 and len(cycles[0]) == 12


class TestNavigation:
    def test_predecessor_inverse_of_successor(self):
        ring = RingTopology.random(range(9), rng=1)
        for p in range(9):
            assert ring.predecessor(ring.successor(p)) == p

    def test_unknown_machine_raises(self):
        ring = RingTopology.identity(3)
        with pytest.raises(KeyError):
            ring.successor(7)
        with pytest.raises(KeyError):
            ring.predecessor(7)

    def test_contains(self):
        ring = RingTopology([3, 5, 9])
        assert 5 in ring and 4 not in ring


class TestModification:
    def test_with_machine_at_end(self):
        ring = RingTopology.identity(3).with_machine(7)
        ring.validate()
        assert ring.n_machines == 4
        assert ring.successor(2) == 7 and ring.successor(7) == 0

    def test_with_machine_after(self):
        ring = RingTopology.identity(3).with_machine(9, after=0)
        assert ring.successor(0) == 9 and ring.successor(9) == 1

    def test_with_machine_rejects_existing(self):
        with pytest.raises(ValueError):
            RingTopology.identity(3).with_machine(1)

    def test_without_machine_reconnects(self):
        ring = RingTopology.identity(4).without_machine(2)
        ring.validate()
        assert ring.successor(1) == 3

    def test_without_machine_rejects_last(self):
        with pytest.raises(ValueError):
            RingTopology.identity(1).without_machine(0)

    def test_rewired_same_machines(self):
        ring = RingTopology.identity(8)
        new = ring.rewired(rng=5)
        new.validate()
        assert sorted(new.machines) == sorted(ring.machines)

    def test_operations_do_not_mutate(self):
        ring = RingTopology.identity(4)
        ring.with_machine(9)
        ring.without_machine(2)
        assert ring.n_machines == 4
