"""SimulatedCluster: protocol invariants, determinism, virtual-clock laws."""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.distributed.cluster import FaultEvent, SimulatedCluster
from repro.distributed.costmodel import CostModel
from repro.distributed.partition import make_shards, partition_indices


def build_cluster(
    X,
    n_bits=4,
    P=4,
    epochs=1,
    engine="sync",
    cost=None,
    seed=0,
    equal_shards=False,
    **kwargs,
):
    ba = BinaryAutoencoder.linear(X.shape[1], n_bits)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=seed)
    parts = partition_indices(len(X), P, rng=seed, shuffle=not equal_shards)
    shards = make_shards(X, adapter.features(X), Z, parts)
    cluster = SimulatedCluster(
        adapter,
        shards,
        epochs=epochs,
        engine=engine,
        cost=cost if cost is not None else CostModel(),
        seed=seed,
        **kwargs,
    )
    return cluster, adapter


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(160, 10, n_clusters=4, rng=3)


class TestWStepInvariants:
    @pytest.mark.parametrize("engine", ["sync", "async"])
    @pytest.mark.parametrize("P", [1, 2, 4, 5])
    def test_all_machines_hold_final_model(self, X, engine, P):
        cluster, _ = build_cluster(X, P=P, engine=engine)
        cluster.w_step(mu=0.1)
        assert cluster.model_copies_consistent()

    @pytest.mark.parametrize("engine", ["sync", "async"])
    def test_counter_reaches_total_visits(self, X, engine):
        P, e = 4, 2
        cluster, adapter = build_cluster(X, P=P, epochs=e, engine=engine)
        cluster.w_step(mu=0.1)
        total_visits = P * (e + 1) - 1
        for p in cluster.machines:
            for sid, msg in cluster._stores[p].items():
                # The final copy each machine holds was stamped at some
                # visit >= the last training visit.
                assert msg.counter <= total_visits
        maxes = [
            max(m.counter for m in cluster._stores[p].values())
            for p in cluster.machines
        ]
        assert max(maxes) == total_visits

    def test_sgd_touches_all_points_per_epoch(self, X):
        # Each submodel's SGD state must have seen e * N examples.
        e = 3
        cluster, adapter = build_cluster(X, P=4, epochs=e)
        cluster.w_step(mu=0.1)
        store = cluster._stores[cluster.machines[0]]
        for spec in adapter.submodel_specs():
            assert store[spec.sid].sgd_state.n_updates == e * len(X)

    def test_assemble_writes_model(self, X):
        cluster, adapter = build_cluster(X, P=3)
        A_before = adapter.model.encoder.A.copy()
        cluster.w_step(mu=0.1)
        assert not np.array_equal(adapter.model.encoder.A, A_before)

    @pytest.mark.parametrize("engine", ["sync", "async"])
    def test_deterministic_given_seed(self, X, engine):
        a, ad_a = build_cluster(X, P=4, engine=engine, seed=11)
        b, ad_b = build_cluster(X, P=4, engine=engine, seed=11)
        a.w_step(0.1)
        b.w_step(0.1)
        assert np.array_equal(ad_a.model.encoder.A, ad_b.model.encoder.A)
        assert np.array_equal(ad_a.model.decoder.B, ad_b.model.decoder.B)

    def test_message_hops_rounds_scheme(self, X):
        # Hops per submodel = total_visits - 1 = P(e+1) - 2.
        P, e = 4, 2
        cluster, adapter = build_cluster(X, P=P, epochs=e)
        stats = cluster.w_step(0.1)
        M = adapter.n_submodels
        assert stats.n_messages == M * (P * (e + 1) - 2)

    def test_message_hops_tworound_scheme(self, X):
        P, e = 4, 3
        cluster, adapter = build_cluster(X, P=P, epochs=e, scheme="tworound")
        stats = cluster.w_step(0.1)
        M = adapter.n_submodels
        assert stats.n_messages == M * (2 * P - 2)

    def test_tworound_trains_same_total_passes(self, X):
        e = 3
        cluster, adapter = build_cluster(X, P=4, epochs=e, scheme="tworound")
        cluster.w_step(0.1)
        store = cluster._stores[cluster.machines[0]]
        for spec in adapter.submodel_specs():
            assert store[spec.sid].sgd_state.n_updates == e * len(X)

    def test_shuffle_ring_keeps_invariants(self, X):
        cluster, _ = build_cluster(X, P=5, epochs=2, shuffle_ring=True)
        cluster.w_step(0.1)
        assert cluster.model_copies_consistent()

    def test_no_data_communicated(self, X):
        # bytes_sent counts only parameter payloads: per submodel, hops *
        # theta bytes; far smaller than the data.
        P, e = 4, 1
        cluster, adapter = build_cluster(X, P=P, epochs=e)
        stats = cluster.w_step(0.1)
        expected = sum(
            (P * (e + 1) - 2) * adapter.get_params(s).nbytes
            for s in adapter.submodel_specs()
        )
        assert stats.bytes_sent == expected
        assert stats.bytes_sent < X.nbytes


class TestVirtualClock:
    def test_pure_compute_sync_time(self, X):
        # t_wc = 0, equal shards, M divisible by P: every tick costs
        # (M/P) * n_p * t_wr, over P*e training ticks -> M e n_p t_wr.
        P, e = 4, 2
        cost = CostModel(t_wr=1.0, t_wc=0.0, t_zr=1.0)
        cluster, adapter = build_cluster(
            X, n_bits=4, P=P, epochs=e, cost=cost, equal_shards=True
        )
        n_p = len(X) // P
        stats = cluster.w_step(0.1)
        M = adapter.n_submodels
        assert stats.sim_time == pytest.approx(M * e * n_p * 1.0)

    def test_single_machine_time_matches_theory(self, X):
        # T(1) = M N e t_wr + M N t_zr (eq. 10), no communication.
        cost = CostModel(t_wr=2.0, t_wc=500.0, t_zr=3.0)
        cluster, adapter = build_cluster(X, P=1, epochs=2, cost=cost)
        w = cluster.w_step(0.1)
        z = cluster.z_step(0.1)
        M, N = adapter.n_submodels, len(X)
        assert w.sim_time == pytest.approx(M * N * 2 * 2.0)
        assert z.sim_time == pytest.approx(M * N * 3.0)
        assert w.comm_time == 0.0

    def test_z_step_time_formula(self, X):
        # Per machine: M * n_p * t_zr; sim time = slowest machine.
        cost = CostModel(t_zr=2.0)
        cluster, adapter = build_cluster(X, P=4, cost=cost, equal_shards=True)
        cluster.w_step(0.1)
        z = cluster.z_step(0.1)
        n_p = max(s.n for s in cluster.shards.values())
        assert z.sim_time == pytest.approx(adapter.n_submodels * n_p * 2.0)

    def test_sync_w_time_close_to_theory_with_comm(self, X):
        # With comm the engine time must track eq. (8) closely (the theory
        # overcounts the final broadcast round by construction).
        from repro.perfmodel.speedup import SpeedupParams, t_w

        P, e = 4, 1
        cost = CostModel(t_wr=1.0, t_wc=50.0, t_zr=1.0)
        cluster, adapter = build_cluster(
            X, P=P, epochs=e, cost=cost, equal_shards=True
        )
        stats = cluster.w_step(0.1)
        params = SpeedupParams(N=len(X), M=adapter.n_submodels, e=e,
                               t_wr=1.0, t_wc=50.0, t_zr=1.0)
        theory = t_w(P, params)
        assert stats.sim_time <= theory
        assert stats.sim_time >= 0.8 * theory

    def test_heterogeneous_speeds_balance(self, X):
        # A machine twice as fast with twice the data finishes the Z step
        # simultaneously with the others (load balancing, section 4.3).
        alphas = [2.0, 1.0, 1.0]
        ba = BinaryAutoencoder.linear(X.shape[1], 4)
        adapter = BAAdapter(ba)
        Z, _ = init_codes_pca(X, 4, rng=0)
        parts = partition_indices(len(X), 3, alphas=alphas, rng=0)
        shards = make_shards(X, X, Z, parts)
        cost = CostModel(t_zr=1.0, speeds={0: 2.0, 1: 1.0, 2: 1.0})
        cluster = SimulatedCluster(adapter, shards, cost=cost, seed=0)
        z = cluster.z_step(0.1)
        times = list(z.per_machine_time.values())
        assert max(times) / min(times) == pytest.approx(1.0, rel=0.05)


class TestZStep:
    def test_z_step_never_increases_e_q(self, X):
        cluster, _ = build_cluster(X, P=3)
        cluster.w_step(0.5)
        before = cluster.e_q(0.5)
        cluster.z_step(0.5)
        assert cluster.e_q(0.5) <= before + 1e-9

    def test_z_changes_reported(self, X):
        cluster, _ = build_cluster(X, P=3)
        cluster.w_step(0.5)
        codes_before = cluster.gather_codes()[1].copy()
        z = cluster.z_step(0.5)
        codes_after = cluster.gather_codes()[1]
        assert z.z_changes == int((codes_before != codes_after).sum())

    def test_gather_codes_ordered(self, X):
        cluster, _ = build_cluster(X, P=4)
        idx, Z = cluster.gather_codes()
        assert np.array_equal(idx, np.arange(len(X)))
        assert Z.shape == (len(X), 4)


class TestIterationLoop:
    def test_e_q_decreases_over_iterations(self, X):
        cluster, _ = build_cluster(X, P=4, seed=1)
        mus = [1e-3 * 2**i for i in range(5)]
        eqs = []
        for mu in mus:
            cluster.iteration(mu)
            eqs.append(cluster.e_q(mu))
        assert eqs[-1] < eqs[0]

    def test_invalid_engine_rejected(self, X):
        with pytest.raises(ValueError):
            build_cluster(X, engine="quantum")

    def test_async_rejects_fault(self, X):
        cluster, _ = build_cluster(X, engine="async")
        with pytest.raises(ValueError, match="sync"):
            cluster.w_step(0.1, fault=FaultEvent(machine=1, tick=1))
