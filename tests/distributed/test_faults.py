"""Fault tolerance (paper section 4.3): a machine dies mid-W-step."""

import numpy as np
import pytest

from repro.distributed.cluster import FaultEvent

from .test_cluster import build_cluster


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=5)


class TestFaultDuringWStep:
    @pytest.mark.parametrize("tick", [0, 1, 3])
    def test_w_step_completes_after_fault(self, X, tick):
        cluster, _ = build_cluster(X, P=4, epochs=2)
        stats = cluster.w_step(0.1, fault=FaultEvent(machine=2, tick=tick))
        assert stats.sim_time > 0
        assert 2 not in cluster.shards
        assert cluster.n_machines == 3

    def test_survivors_hold_consistent_model(self, X):
        cluster, _ = build_cluster(X, P=4, epochs=1)
        cluster.w_step(0.1, fault=FaultEvent(machine=1, tick=1))
        assert cluster.model_copies_consistent()

    def test_training_continues_after_fault(self, X):
        # The model still improves over subsequent full iterations.
        cluster, _ = build_cluster(X, P=4, seed=2)
        cluster.iteration(1e-3)
        e0 = cluster.e_q(1e-3)
        cluster.w_step(2e-3, fault=FaultEvent(machine=3, tick=2))
        cluster.z_step(2e-3)
        for mu in (4e-3, 8e-3, 16e-3):
            cluster.iteration(mu)
        assert np.isfinite(cluster.e_q(16e-3))
        assert cluster.e_q(16e-3) < e0 * 2  # sane magnitude, no blow-up

    def test_dead_machines_data_is_lost(self, X):
        cluster, _ = build_cluster(X, P=4)
        n_before = cluster.n_points
        lost = cluster.shards[0].n
        cluster.w_step(0.1, fault=FaultEvent(machine=0, tick=1))
        assert cluster.n_points == n_before - lost

    def test_fault_on_unknown_machine_raises(self, X):
        cluster, _ = build_cluster(X, P=3)
        with pytest.raises(KeyError):
            cluster.w_step(0.1, fault=FaultEvent(machine=9, tick=0))

    def test_cannot_fail_only_machine(self, X):
        cluster, _ = build_cluster(X, P=1)
        with pytest.raises(ValueError):
            cluster.w_step(0.1, fault=FaultEvent(machine=0, tick=0))

    def test_fault_late_in_broadcast_phase(self, X):
        # Fault after all training ticks: only broadcast copies remain.
        P, e = 4, 1
        cluster, _ = build_cluster(X, P=P, epochs=e)
        cluster.w_step(0.1, fault=FaultEvent(machine=2, tick=P * e + 1))
        assert cluster.model_copies_consistent()

    def test_sgd_passes_drop_by_dead_shard(self, X):
        # After an early fault, submodels train on the surviving data only;
        # totals must stay consistent with the alive machine set.
        cluster, adapter = build_cluster(X, P=4, epochs=1)
        dead_n = cluster.shards[2].n
        cluster.w_step(0.1, fault=FaultEvent(machine=2, tick=0))
        store = cluster._stores[cluster.machines[0]]
        for spec in adapter.submodel_specs():
            assert store[spec.sid].sgd_state.n_updates == len(X) - dead_n


class TestFaultDuringZStep:
    def test_remove_machine_models_z_step_fault(self, X):
        # "If it happens during the Z step, all we need to do is discard the
        # faulty machine and reconnect" — remove_machine is exactly that.
        cluster, _ = build_cluster(X, P=4)
        cluster.iteration(0.1)
        cluster.remove_machine(1)
        assert cluster.n_machines == 3
        cluster.iteration(0.2)  # keeps running
        assert cluster.model_copies_consistent()
