"""Elasticity & checkpointing: join correctness and resumable state.

Regression coverage for the three historical ``add_machine`` bugs —
unvalidated shards joining silently, joins perturbing the route RNG
(breaking bit-parity for the rest of the fit), and the donor model being
cloned from a possibly-stale store — plus property tests for the
:class:`~repro.distributed.dataplane.ClusterState` snapshot format and
the multiprocess pool's join-slot growth path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.core.penalty import GeometricSchedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import get_backend
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.dataplane import ClusterState, DataPlane
from repro.distributed.partition import (
    Shard,
    TimingShard,
    make_shards,
    partition_indices,
)


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=4)


def ba_setup(X, P=3, n_bits=4, seed=0):
    ba = BinaryAutoencoder.linear(X.shape[1], n_bits)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=seed)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_shards(X, adapter.features(X), Z, parts)


def make_cluster(X, P=3, seed=0, **kwargs):
    adapter, shards = ba_setup(X, P=P, seed=seed)
    return SimulatedCluster(adapter, shards, seed=seed, **kwargs)


def final_params(adapter):
    return {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}


class TestAddMachineValidation:
    """Bugfix 1: joins go through DataPlane validation — the same clear
    errors ``ingest`` raises — instead of a bare len() check plus a
    silent float64 force-cast."""

    def test_wrong_width_rejected(self, X):
        cluster = make_cluster(X)
        with pytest.raises(ValueError, match="columns"):
            cluster.add_machine(np.zeros((5, X.shape[1] + 1)))

    def test_empty_rejected(self, X):
        cluster = make_cluster(X)
        with pytest.raises(ValueError, match="data point"):
            cluster.add_machine(np.zeros((0, X.shape[1])))

    def test_one_dimensional_rejected(self, X):
        cluster = make_cluster(X)
        with pytest.raises(ValueError, match="2-d"):
            cluster.add_machine(np.zeros(X.shape[1]))

    def test_non_streamable_shards_rejected(self):
        ba = BinaryAutoencoder.linear(8, 4)
        cluster = SimulatedCluster(
            BAAdapter(ba), [TimingShard(50) for _ in range(3)],
            execute_updates=False, seed=0,
        )
        with pytest.raises(TypeError, match="streaming"):
            cluster.add_machine(np.zeros((5, 8)))

    def test_failed_join_registers_nothing(self, X):
        cluster = make_cluster(X)
        machines_before = list(cluster.machines)
        next_id_before = cluster.dataplane._next_machine_id
        with pytest.raises(ValueError):
            cluster.add_machine(np.zeros((5, X.shape[1] + 3)))
        assert cluster.machines == machines_before
        assert cluster.dataplane._next_machine_id == next_id_before

    def test_backend_add_machine_validates_eagerly(self, X):
        backend = get_backend("sync")(seed=0)
        adapter, shards = ba_setup(X)
        backend.setup(adapter, shards)
        with pytest.raises(ValueError, match="columns"):
            backend.add_machine(np.zeros((5, X.shape[1] + 1)))
        with pytest.raises(KeyError):
            backend.add_machine(np.zeros((5, X.shape[1])), after=99)

    def test_backend_add_machine_requires_setup(self):
        backend = get_backend("sync")()
        with pytest.raises(RuntimeError, match="setup"):
            backend.add_machine(np.zeros((5, 8)))


class TestJoinRouteRNGIndependence:
    """Bugfix 2: a join must not advance the route RNG — the remaining
    shuffle_ring schedule has to be identical with and without it."""

    def test_route_rng_state_untouched_by_join(self, X):
        cluster = make_cluster(X, shuffle_ring=True)
        cluster.iteration(1e-3)
        state_before = cluster._route_rng.bit_generator.state
        cluster.add_machine(X[:10])
        assert cluster._route_rng.bit_generator.state == state_before

    def test_schedule_agrees_up_to_the_join(self, X):
        # Two identical shuffle_ring fits; one admits a machine after
        # iteration 1. Iterations 0 and 1 — everything up to the join
        # point — must be bit-identical, route draws included.
        def run(join):
            adapter, shards = ba_setup(X)
            backend = get_backend("sync")(
                epochs=2, shuffle_within=False, shuffle_ring=True, seed=0
            )
            backend.setup(adapter, shards)
            stats = [backend.run_iteration(1e-3)]
            if join:
                backend.add_machine(X[:10])
            stats.append(backend.run_iteration(2e-3))
            return stats, backend

        (plain, b1), (joined, b2) = run(False), run(True)
        assert plain[0].e_ba == joined[0].e_ba
        # The join drains at iteration 1's boundary; the ring draws for
        # iteration 1 come from the same route stream position either
        # way, which the paired sim times expose deterministically.
        assert joined[1].machines_added == 1
        assert joined[1].n_machines == plain[1].n_machines + 1

    def test_join_streams_are_distinct_and_id_keyed(self, X):
        cluster = make_cluster(X)
        p1 = cluster.add_machine(X[:10])
        p2 = cluster.add_machine(X[10:20])
        a = cluster._machine_rngs[p1].integers(0, 2**63, size=4)
        b = cluster._machine_rngs[p2].integers(0, 2**63, size=4)
        assert not np.array_equal(a, b)
        # Same seed, same machine id → same stream, regardless of what
        # else happened in between (keyed derivation, not a counter).
        other = make_cluster(X)
        other.iteration(1e-3)
        q1 = other.add_machine(X[:10])
        assert q1 == p1
        assert np.array_equal(
            other._machine_rngs[q1].integers(0, 2**63, size=4), a
        )


class TestJoinDonorLiveness:
    """Bugfix 3: the donor model is assembled from verified-live
    survivor stores, taking the freshest copy of each submodel — never a
    stale (or deleted) store."""

    def test_clone_prefers_freshest_live_copies(self, X):
        cluster = make_cluster(X)
        cluster.iteration(1e-3)
        first = cluster.machines[0]
        sid = cluster.adapter.submodel_specs()[0].sid
        # Make the first machine's copy of one submodel stale: older
        # counter, perturbed parameters.
        stale = cluster._stores[first][sid]
        stale.counter -= 1
        stale.theta = stale.theta + 123.0
        p = cluster.add_machine(X[:10])
        fresh = cluster._stores[cluster.machines[1]][sid]
        assert np.array_equal(cluster._stores[p][sid].theta, fresh.theta)
        assert not np.array_equal(cluster._stores[p][sid].theta, stale.theta)

    def test_clone_skips_retired_stores(self, X):
        cluster = make_cluster(X, P=4)
        cluster.iteration(1e-3)
        dead = cluster.machines[0]
        cluster.remove_machine(dead)
        p = cluster.add_machine(X[:10])
        survivor = cluster._stores[cluster.machines[0]]
        for sid, msg in cluster._stores[p].items():
            assert np.array_equal(msg.theta, survivor[sid].theta)

    def test_joined_machine_holds_current_model(self, X):
        cluster = make_cluster(X)
        cluster.iteration(1e-3)
        p = cluster.add_machine(X[:10])
        specs = cluster.adapter.submodel_specs()
        for spec in specs:
            assert np.array_equal(
                cluster._stores[p][spec.sid].theta,
                cluster.adapter.get_params(spec),
            )
        cluster.iteration(2e-3)
        assert cluster.model_copies_consistent()


# --------------------------------------------------------- ClusterState
arrays = st.builds(
    lambda shape, fill: np.full(shape, fill, dtype=np.float64),
    shape=st.tuples(st.integers(1, 5), st.integers(1, 4)),
    fill=st.floats(allow_nan=False, allow_infinity=False, width=32),
)


def _states():
    def build(machines, params, counters, iteration, order_seed):
        rng = np.random.default_rng(order_seed)
        ring = list(rng.permutation(machines))
        shards = {
            int(p): Shard(
                X=np.full((2, 3), p, dtype=np.float64),
                F=np.full((2, 3), p + 0.5),
                Z=np.sign(np.full((2, 2), p - 0.5)),
                indices=np.arange(2) + 2 * p,
            )
            for p in machines
        }
        return ClusterState(
            backend="sync",
            iteration=iteration,
            ring_order=[int(p) for p in ring],
            params={i: a for i, a in enumerate(params)},
            shards=shards,
            bookkeeping={
                "rows_ingested": counters[0],
                "shards_lost": counters[1],
                "rows_lost": counters[2],
                "retired": set(),
                "next_machine_id": max(machines) + 1,
                "next_global_index": 2 * len(machines),
            },
            machine_rng_states={
                int(p): np.random.default_rng(p).bit_generator.state
                for p in machines
            },
            pending_ingests=[(int(machines[0]), np.zeros((1, 3)))],
        )

    return st.builds(
        build,
        machines=st.lists(
            st.integers(0, 40), min_size=1, max_size=5, unique=True
        ),
        params=st.lists(arrays, min_size=1, max_size=4),
        counters=st.tuples(
            st.integers(0, 10**6), st.integers(0, 50), st.integers(0, 10**6)
        ),
        iteration=st.integers(0, 1000),
        order_seed=st.integers(0, 2**31 - 1),
    )


def assert_states_equal(a: ClusterState, b: ClusterState) -> None:
    assert a.backend == b.backend
    assert a.iteration == b.iteration
    assert a.ring_order == b.ring_order
    assert set(a.params) == set(b.params)
    for sid in a.params:
        assert np.array_equal(a.params[sid], b.params[sid])
    assert set(a.shards) == set(b.shards)
    for p in a.shards:
        for field in ("X", "F", "Z", "indices"):
            assert np.array_equal(
                getattr(a.shards[p], field), getattr(b.shards[p], field)
            )
    assert a.bookkeeping == b.bookkeeping
    assert a.machine_rng_states == b.machine_rng_states
    assert len(a.pending_ingests) == len(b.pending_ingests)
    for (pa, Xa), (pb, Xb) in zip(a.pending_ingests, b.pending_ingests):
        assert pa == pb and np.array_equal(Xa, Xb)


class TestClusterStateSerialization:
    @settings(max_examples=25, deadline=None)
    @given(state=_states())
    def test_save_load_roundtrip(self, state, tmp_path_factory):
        path = tmp_path_factory.mktemp("ckpt") / "state.ckpt"
        state.save(path)
        assert_states_equal(state, ClusterState.load(path))

    def test_load_rejects_non_state_pickle(self, tmp_path):
        import pickle

        path = tmp_path / "bogus.ckpt"
        path.write_bytes(pickle.dumps({"not": "a state"}))
        with pytest.raises(TypeError, match="ClusterState"):
            ClusterState.load(path)

    def test_load_rejects_newer_version(self, tmp_path):
        state = ClusterState(
            backend="sync", iteration=0, ring_order=[0], params={},
            shards={}, bookkeeping={}, version=999,
        )
        path = tmp_path / "future.ckpt"
        state.save(path)
        with pytest.raises(ValueError, match="version"):
            ClusterState.load(path)

    def test_bookkeeping_roundtrip_through_dataplane(self, X):
        adapter, shards = ba_setup(X)
        plane = DataPlane(adapter, shards)
        plane.apply(plane.prepare_ingest(0, X[:7]))
        plane.retire(2, lost=True)
        book = plane.bookkeeping()
        plane2 = DataPlane(adapter, {p: s for p, s in plane.shards.items()})
        plane2.restore_bookkeeping(book)
        assert plane2.rows_ingested == plane.rows_ingested
        assert plane2.shards_lost == 1
        assert plane2.retired == {2}
        assert plane2._next_global_index == plane._next_global_index
        assert plane2._next_machine_id == plane._next_machine_id


class TestCheckpointGuards:
    def test_checkpoint_requires_setup(self):
        backend = get_backend("sync")()
        with pytest.raises(RuntimeError, match="setup"):
            backend.checkpoint()

    def test_checkpoint_rejects_pending_joins(self, X):
        adapter, shards = ba_setup(X)
        backend = get_backend("sync")(seed=0)
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        backend.add_machine(X[:10])
        with pytest.raises(RuntimeError, match="join"):
            backend.checkpoint()
        backend.run_iteration(2e-3)  # join drains; snapshot is legal again
        assert backend.checkpoint().n_machines == 4

    def test_restore_requires_an_adapter(self, X):
        adapter, shards = ba_setup(X)
        backend = get_backend("sync")(seed=0)
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        state = backend.checkpoint()
        state.adapter = None
        with pytest.raises(ValueError, match="adapter"):
            get_backend("sync")(seed=0).restore(state)

    def test_restore_rejects_mismatched_configuration(self, X):
        # Resuming under a different protocol cannot be bit-identical;
        # the snapshot records its configuration and restore refuses a
        # mismatch instead of silently diverging.
        adapter, shards = ba_setup(X)
        backend = get_backend("sync")(seed=0, epochs=2)
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        state = backend.checkpoint()
        backend.close()
        with pytest.raises(ValueError, match="epochs"):
            get_backend("sync")(seed=0, epochs=1).restore(state)
        with pytest.raises(ValueError, match="scheme"):
            get_backend("sync")(seed=0, epochs=2, scheme="tworound").restore(state)

    def test_cross_engine_restore_warns(self, X):
        adapter, shards = ba_setup(X)
        backend = get_backend("sync")(seed=0, shuffle_within=False)
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        state = backend.checkpoint()
        backend.close()
        fresh = get_backend("async")(seed=0, shuffle_within=False)
        with pytest.warns(RuntimeWarning, match="'sync' checkpoint"):
            fresh.restore(state)
        assert np.isfinite(fresh.run_iteration(2e-3).e_q)
        fresh.close()

    def test_tcp_exhausted_ports_reject_join_eagerly(self, X):
        # An explicit ports list with no slot for the joiner must fail
        # at the add_machine call site, leaving the fit healthy.
        import socket

        socks = [socket.socket() for _ in range(3)]
        try:
            for s in socks:
                s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                s.bind(("127.0.0.1", 0))
            ports = [s.getsockname()[1] for s in socks]
        finally:
            for s in socks:
                s.close()
        adapter, shards = ba_setup(X)
        backend = get_backend("tcp")(seed=0, ports=ports)
        try:
            backend.setup(adapter, shards)
            backend.run_iteration(1e-3)
            with pytest.raises(ValueError, match="ports"):
                backend.add_machine(X[:10])
            # Nothing half-joined: the fit keeps running on 3 machines.
            stats = backend.run_iteration(2e-3)
            assert stats.n_machines == 3 and stats.machines_added == 0
        finally:
            backend.close()


class TestMultiprocessJoinSlots:
    def test_exhausted_slots_grow_the_pool_bit_identically(self, X):
        # join_slots=0 forces the transparent pool rebuild on the first
        # join; the fit must still match the simulated reference bit for
        # bit.
        schedule = GeometricSchedule(1e-3, 2.0, 4)
        joins = {2: [X[:15]]}
        finals = {}
        for name, options in [
            ("sync", {}),
            ("multiprocess", {"join_slots": 0}),
        ]:
            adapter, shards = ba_setup(X)
            trainer = ParMACTrainer(
                adapter, schedule, backend=name, epochs=2,
                shuffle_within=False, seed=0, backend_options=options,
            )
            history = trainer.fit(shards, joins=joins)
            trainer.close()
            finals[name] = final_params(adapter)
            assert [r.extra["machines_added"] for r in history.records] == [0, 0, 1, 0]
        for sid in finals["sync"]:
            assert np.array_equal(finals["sync"][sid], finals["multiprocess"][sid])
