"""Self-healing under ``fault_policy="respawn"``.

The recovery contract: a worker killed mid-iteration is *replaced* — the
coordinator restores the lost shard and submodels from the
iteration-boundary snapshot, rewinds the route RNG, and retries the
iteration — so the fit completes with **zero shards lost** and a final
model **bit-identical** to an uninterrupted run. Crash schedules
(:class:`~repro.distributed.chaos.CrashEvent`) make the kills
deterministic and engine-portable: the simulated engines absorb the same
schedule (no process to kill) with identical numerics, which is what
makes the cross-engine conformance here meaningful.

Escalation is part of the contract too: a worker that dies *again* on
every respawn attempt burns the ``respawn_budget`` and is then retired
like ``drop_shard`` would — degraded beats dead, dead beats wrong.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.penalty import GeometricSchedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import available_backends, get_backend
from repro.distributed.chaos import ChaosConfig, CrashEvent

from tests.distributed.test_wallclock_faults import (
    FAULT_DETECTION_TIMEOUT_S,
    WALLCLOCK_BACKENDS,
    ba_setup,
    killable_setup,
    shm_entries,
)

BACKENDS = available_backends()
REFERENCE = "sync"

#: Generous hard cap: every stall is caught by the health plane or the
#: respawn retry loop long before this fires.
TIMEOUT_S = FAULT_DETECTION_TIMEOUT_S * 3

#: Fast heartbeat plane for test-sized iterations.
HEALTH = {"interval_s": 0.05, "slow_after_s": 0.5, "stalled_after_s": 30.0}


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=4)


def run_fit(
    X,
    backend,
    *,
    crashes=(),
    fault_policy="respawn",
    n_iters=4,
    P=3,
    shuffle_within=True,
    health=None,
    setup=ba_setup,
    **backend_options,
):
    """One fit; returns (history, final submodel params)."""
    adapter, shards = setup(X, P=P)
    chaos = ChaosConfig(crashes=tuple(crashes)) if crashes else None
    if backend in WALLCLOCK_BACKENDS:
        backend_options.setdefault("worker_timeout", TIMEOUT_S)
        backend_options.setdefault("respawn_backoff", 0.0)
    with ParMACTrainer(
        adapter,
        GeometricSchedule(1e-3, 2.0, n_iters),
        backend=backend,
        epochs=2,
        shuffle_within=shuffle_within,
        seed=0,
        chaos=chaos,
        fault_policy=fault_policy,
        backend_options={"health": health, **backend_options},
    ) as trainer:
        history = trainer.fit(shards)
    params = {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}
    return history, params


def assert_same_params(got, ref, label):
    assert set(got) == set(ref)
    for sid in ref:
        assert np.array_equal(got[sid], ref[sid]), (label, sid)


# ------------------------------------------------------- wall-clock respawn
@pytest.mark.slow
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestRespawnBitIdentity:
    @pytest.mark.parametrize("point", ["w", "z"])
    def test_mid_iteration_kill_completes_bit_identical(self, X, name, point):
        """The acceptance headline: SIGKILL a worker mid-iteration (at
        the W-step start, mid-ring; or at the Z step, after its last ring
        send) — the fit completes with zero shards lost and the final
        model matches the uninterrupted run bit for bit."""
        ref_history, ref = run_fit(X, name)
        shm_before = shm_entries()
        history, got = run_fit(
            X, name, crashes=[CrashEvent(machine=1, iteration=1, point=point)]
        )
        assert len(history) == len(ref_history) == 4
        assert [r.extra["shards_lost"] for r in history.records] == [0, 0, 0, 0]
        assert [r.extra["n_machines"] for r in history.records] == [3, 3, 3, 3]
        assert [r.extra["respawns"] for r in history.records] == [0, 1, 0, 0]
        assert_same_params(got, ref, (name, point))
        # The rebuilt pool leaked nothing: segments were re-packed once
        # per respawn and the old generation unlinked.
        assert shm_entries() <= shm_before

    def test_sigkill_storm(self, X, name):
        """Repeated kills across iterations — different machines, both
        crash points, including the model-holding rank — each one healed
        by a fresh respawn, final bits unchanged."""
        storm = [
            CrashEvent(machine=0, iteration=0, point="w"),
            CrashEvent(machine=2, iteration=1, point="z"),
            CrashEvent(machine=1, iteration=2, point="w"),
        ]
        _, ref = run_fit(X, name)
        history, got = run_fit(X, name, crashes=storm)
        assert len(history) == 4
        assert [r.extra["respawns"] for r in history.records] == [1, 1, 1, 0]
        assert sum(r.extra["shards_lost"] for r in history.records) == 0
        assert history.records[-1].extra["n_machines"] == 3
        assert_same_params(got, ref, name)

    def test_two_workers_killed_same_iteration(self, X, name):
        """Two peers dying in the same attempt heal in one rebuild."""
        ref_history, ref = run_fit(X, name)
        history, got = run_fit(
            X,
            name,
            crashes=[
                CrashEvent(machine=0, iteration=1, point="w"),
                CrashEvent(machine=2, iteration=1, point="w"),
            ],
        )
        assert len(history) == 4
        assert history.records[1].extra["respawns"] == 1
        assert sum(r.extra["shards_lost"] for r in history.records) == 0
        assert_same_params(got, ref, name)


@pytest.mark.slow
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestRespawnEscalation:
    def test_budget_exhaustion_escalates_to_drop(self, X, name):
        """A worker that re-kills itself on *every* respawn (the marked
        shard is faithfully restored, marker included) burns the budget
        and is then retired drop_shard-style: the fit still completes,
        one shard lost, survivors intact."""
        budget = 2

        def setup(X, P=3):
            return killable_setup(X, P=P, kills={1: 2e-3})

        history, params = run_fit(
            X, name, setup=setup, respawn_budget=budget, n_iters=4
        )
        assert len(history) == 4
        fatal = history.records[1]
        assert fatal.extra["respawns"] == budget
        assert fatal.extra["shards_lost"] == 1
        assert [r.extra["shards_lost"] for r in history.records] == [0, 1, 0, 0]
        assert [r.extra["n_machines"] for r in history.records] == [3, 2, 2, 2]
        assert all(np.isfinite(r.e_q) for r in history.records)
        for sid, p in params.items():
            assert np.all(np.isfinite(p)), sid

    def test_zero_budget_is_immediate_drop(self, X, name):
        """``respawn_budget=0`` degenerates to drop_shard semantics."""
        crashes = [CrashEvent(machine=1, iteration=1, point="w")]
        history, _ = run_fit(X, name, crashes=crashes, respawn_budget=0)
        assert len(history) == 4
        assert [r.extra["shards_lost"] for r in history.records] == [0, 1, 0, 0]
        assert [r.extra["respawns"] for r in history.records] == [0, 0, 0, 0]

    def test_kill_between_iterations_respawns(self, X, name):
        """A worker SIGKILLed while idle is replaced at the next
        iteration's dispatch — same zero-loss outcome as a mid-iteration
        kill, without a crash schedule (a real external kill)."""
        adapter, shards = ba_setup(X)
        backend = get_backend(name)(
            seed=0,
            fault_policy="respawn",
            respawn_backoff=0.0,
            worker_timeout=TIMEOUT_S,
        )
        try:
            backend.setup(adapter, shards)
            backend.run_iteration(1e-3)
            os.kill(backend.worker_pids[-1], signal.SIGKILL)
            t0 = time.monotonic()
            stats = backend.run_iteration(2e-3)
            assert time.monotonic() - t0 < TIMEOUT_S
            assert stats.extra["respawns"] == 1
            assert stats.shards_lost == 0
            assert stats.n_machines == 3
            stats = backend.run_iteration(4e-3)
            assert np.isfinite(stats.e_q) and stats.extra["respawns"] == 0
        finally:
            backend.close()


@pytest.mark.slow
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestHealthPlane:
    def test_health_counters_surface(self, X, name):
        """With a heartbeat config the per-iteration ``health_*``
        counters land in ``IterationStats.extra``; a scheduled kill shows
        up as exactly one observed death on its iteration."""
        history, _ = run_fit(
            X,
            name,
            crashes=[CrashEvent(machine=1, iteration=1, point="w")],
            health=HEALTH,
            n_iters=3,
        )
        for r in history.records:
            for key in (
                "health_beats",
                "health_slow_events",
                "health_stall_events",
                "health_deaths",
            ):
                assert key in r.extra, key
        assert [r.extra["health_deaths"] for r in history.records] == [0, 1, 0]
        assert sum(r.extra["shards_lost"] for r in history.records) == 0

    def test_health_off_by_default(self, X, name):
        history, _ = run_fit(X, name, n_iters=2)
        assert all("health_beats" not in r.extra for r in history.records)


# ------------------------------------------------------ engine conformance
@pytest.mark.parametrize("name", BACKENDS)
class TestCrashConformance:
    def test_crash_schedule_is_absorbed_everywhere(self, X, name):
        """Every registered engine runs the same crash schedule under
        respawn to the same bits as the sync reference's *fault-free*
        run: recovery is a wall-clock affair, never a numeric one."""
        if name in WALLCLOCK_BACKENDS:
            pytest.skip("wall-clock engines covered by TestRespawnBitIdentity")
        _, ref = run_fit(X, REFERENCE, shuffle_within=False)
        storm = [
            CrashEvent(machine=1, iteration=1, point="w"),
            CrashEvent(machine=2, iteration=2, point="z"),
        ]
        history, got = run_fit(X, name, crashes=storm, shuffle_within=False)
        assert len(history) == 4
        assert [r.extra["respawns"] for r in history.records] == [0, 1, 1, 0]
        assert sum(r.extra["shards_lost"] for r in history.records) == 0
        assert_same_params(got, ref, name)
