import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.partition import Shard, make_shards, partition_indices


class TestPartitionIndices:
    @given(st.integers(1, 500), st.integers(1, 20), st.booleans())
    @settings(max_examples=50)
    def test_disjoint_covering(self, n, P, shuffle):
        if n < P:
            with pytest.raises(ValueError):
                partition_indices(n, P, shuffle=shuffle, rng=0)
            return
        parts = partition_indices(n, P, shuffle=shuffle, rng=0)
        flat = np.concatenate(parts)
        assert sorted(flat.tolist()) == list(range(n))

    @given(st.integers(10, 500), st.integers(1, 10))
    @settings(max_examples=30)
    def test_equal_shares_balanced(self, n, P):
        if n < P:
            return
        sizes = [len(p) for p in partition_indices(n, P, rng=0)]
        assert max(sizes) - min(sizes) <= 1

    def test_proportional_to_alphas(self):
        # Paper section 4.3: machine p gets N*alpha_p/sum(alpha) points.
        parts = partition_indices(1000, 3, alphas=[1.0, 2.0, 7.0], rng=0)
        sizes = [len(p) for p in parts]
        assert sizes == [100, 200, 700]

    def test_alphas_rounding_keeps_total(self):
        parts = partition_indices(100, 3, alphas=[1.0, 1.0, 1.0], rng=0)
        assert sum(len(p) for p in parts) == 100

    def test_minimum_one_point_per_machine(self):
        parts = partition_indices(10, 3, alphas=[1000.0, 1.0, 1.0], rng=0)
        assert all(len(p) >= 1 for p in parts)
        assert sum(len(p) for p in parts) == 10

    def test_rejects_bad_alphas(self):
        with pytest.raises(ValueError):
            partition_indices(10, 2, alphas=[1.0])
        with pytest.raises(ValueError):
            partition_indices(10, 2, alphas=[1.0, -1.0])

    def test_no_shuffle_contiguous(self):
        parts = partition_indices(10, 2, shuffle=False)
        assert np.array_equal(parts[0], np.arange(5))

    def test_reproducible(self):
        a = partition_indices(50, 4, rng=9)
        b = partition_indices(50, 4, rng=9)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestShard:
    def _make(self, n=10, d=3, L=2):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(n, d))
        return Shard(X=X, F=X.copy(), Z=np.zeros((n, L), dtype=np.uint8),
                     indices=np.arange(n))

    def test_n(self):
        assert self._make(7).n == 7

    def test_rejects_inconsistent(self):
        with pytest.raises(ValueError):
            Shard(X=np.zeros((3, 2)), F=np.zeros((2, 2)),
                  Z=np.zeros((3, 1), dtype=np.uint8), indices=np.arange(3))

    def test_append(self):
        s = self._make(5)
        s.append(np.ones((2, 3)), np.ones((2, 3)),
                 np.ones((2, 2), dtype=np.uint8), np.array([100, 101]))
        assert s.n == 7 and s.indices[-1] == 101

    def test_drop(self):
        s = self._make(6)
        s.drop([0, 3])
        assert s.n == 4
        assert 0 not in s.indices and 3 not in s.indices


class TestMakeShards:
    def test_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(20, 4))
        Z = rng.integers(0, 2, size=(20, 3)).astype(np.uint8)
        parts = partition_indices(20, 3, rng=0)
        shards = make_shards(X, X, Z, parts)
        gathered = np.vstack([s.X for s in shards])
        idx = np.concatenate([s.indices for s in shards])
        assert np.array_equal(gathered[np.argsort(idx)], X)

    def test_rejects_overlapping_parts(self):
        X = np.zeros((4, 2))
        Z = np.zeros((4, 1), dtype=np.uint8)
        with pytest.raises(ValueError):
            make_shards(X, X, Z, [np.array([0, 1]), np.array([1, 2, 3])])

    def test_shards_are_copies(self):
        X = np.zeros((4, 2))
        Z = np.zeros((4, 1), dtype=np.uint8)
        shards = make_shards(X, X, Z, [np.array([0, 1]), np.array([2, 3])])
        shards[0].X[0, 0] = 5.0
        assert X[0, 0] == 0.0
