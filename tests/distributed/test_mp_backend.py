"""Real multiprocessing ring: the MPI stand-in."""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.distributed.mp_backend import MultiprocessRing, _home_assignment
from repro.distributed.partition import make_shards, partition_indices


@pytest.fixture(scope="module")
def workload():
    from repro.data.synthetic import make_clustered

    X = make_clustered(120, 8, n_clusters=3, rng=4)
    return X


def build_ring(X, P=3, n_bits=4, epochs=1, **kwargs):
    ba = BinaryAutoencoder.linear(X.shape[1], n_bits)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=0)
    parts = partition_indices(len(X), P, rng=0)
    shards = make_shards(X, adapter.features(X), Z, parts)
    return MultiprocessRing(adapter, shards, epochs=epochs, seed=0, **kwargs), adapter


class TestHomeAssignment:
    def test_contiguous_blocks(self):
        homes = _home_assignment(8, 4)
        assert [homes[i] for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven_split_covers_all_machines(self):
        homes = _home_assignment(7, 3)
        assert set(homes.values()) == {0, 1, 2}


class TestMultiprocessRing:
    def test_runs_and_improves(self, workload):
        ring, adapter = build_ring(workload, P=3)
        mus = [1e-3 * 2**i for i in range(5)]
        results = ring.run(mus)
        assert len(results) == 5
        assert all(np.isfinite(r.e_q) for r in results)
        assert results[-1].e_q < results[0].e_q

    def test_coordinator_model_synced(self, workload):
        # Sum of per-worker E_BA must equal E_BA recomputed from the
        # coordinator's assembled model over the full dataset.
        ring, adapter = build_ring(workload, P=3)
        results = ring.run([1e-3, 2e-3])
        assert results[-1].e_ba == pytest.approx(
            adapter.model.e_ba(workload), rel=1e-9
        )

    def test_single_machine_ring(self, workload):
        ring, adapter = build_ring(workload, P=1, epochs=2)
        results = ring.run([1e-3, 2e-3])
        assert all(np.isfinite(r.e_q) for r in results)

    def test_multiple_epochs(self, workload):
        ring, _ = build_ring(workload, P=3, epochs=3)
        results = ring.run([1e-3])
        assert np.isfinite(results[0].e_q)

    def test_tworound_scheme(self, workload):
        ring, _ = build_ring(workload, P=3, epochs=2, scheme="tworound")
        results = ring.run([1e-3])
        assert np.isfinite(results[0].e_q)

    def test_on_iteration_callback_sees_intermediate_models(self, workload):
        ring, adapter = build_ring(workload, P=2)
        snapshots = []
        ring.run(
            [1e-3, 2e-3],
            on_iteration=lambda res: snapshots.append(adapter.model.encoder.A.copy()),
        )
        assert len(snapshots) == 2
        assert not np.array_equal(snapshots[0], snapshots[1])

    def test_timing_fields_populated(self, workload):
        ring, _ = build_ring(workload, P=2)
        (res,) = ring.run([1e-3])
        assert res.w_time > 0 and res.z_time > 0 and res.wall_time > 0

    def test_rejects_empty_shards(self):
        with pytest.raises(ValueError):
            MultiprocessRing(None, [])

    def test_legacy_wrapper_is_deprecated(self, workload):
        with pytest.warns(DeprecationWarning, match="multiprocess"):
            ring, _ = build_ring(workload)
        ring._backend.close()
