import numpy as np
import pytest

from repro.distributed.interfaces import SubmodelSpec
from repro.distributed.messages import SubmodelMessage
from repro.distributed.partition import TimingShard
from repro.optim.sgd import SGDState


def make_msg(**kwargs):
    defaults = dict(
        spec=SubmodelSpec(sid=0, kind="enc", index=0),
        theta=np.arange(4.0),
    )
    defaults.update(kwargs)
    return SubmodelMessage(**defaults)


class TestSubmodelMessage:
    def test_nbytes(self):
        assert make_msg().nbytes == 4 * 8

    def test_fresh_message_not_done(self):
        msg = make_msg()
        assert not msg.training_done and not msg.done

    def test_done_when_broadcast_exhausted(self):
        msg = make_msg(to_broadcast=set())
        assert msg.training_done and msg.done

    def test_broadcasting_not_done(self):
        msg = make_msg(to_broadcast={1, 2})
        assert msg.training_done and not msg.done

    def test_copy_independent_theta(self):
        msg = make_msg()
        cp = msg.copy()
        cp.theta[0] = 99.0
        assert msg.theta[0] == 0.0

    def test_copy_independent_sets(self):
        msg = make_msg(to_visit={0, 1}, to_broadcast={2})
        cp = msg.copy()
        cp.to_visit.discard(0)
        cp.to_broadcast.discard(2)
        assert msg.to_visit == {0, 1} and msg.to_broadcast == {2}

    def test_copy_independent_sgd_state(self):
        msg = make_msg(sgd_state=SGDState(t=5))
        cp = msg.copy()
        cp.sgd_state.advance(1)
        assert msg.sgd_state.t == 5

    def test_copy_preserves_none_sets(self):
        cp = make_msg().copy()
        assert cp.to_visit is None and cp.to_broadcast is None

    def test_spec_is_hashable(self):
        spec = SubmodelSpec(sid=3, kind="dec", index=(1, 2))
        assert hash(spec) == hash(SubmodelSpec(sid=3, kind="dec", index=(1, 2)))


class TestTimingShard:
    def test_n(self):
        assert TimingShard(42).n == 42

    def test_zero_allowed(self):
        assert TimingShard(0).n == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimingShard(-1)
