"""Property-based checks over the whole protocol configuration space.

Hypothesis draws (P, e, M, scheme, shuffling) combinations and verifies
the structural invariants that make ParMAC correct regardless of
configuration: every machine ends with identical final submodels, each
submodel is trained on every shard exactly e times, and the virtual clock
is consistent between engines.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costmodel import CostModel
from repro.distributed.partition import TimingShard


def build(P, e, L, scheme, engine, shuffle_ring, seed=0, n=1000, D=8,
          groups=None):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba, n_decoder_groups=groups)
    base, extra = divmod(n, P)
    shards = [TimingShard(base + (1 if p < extra else 0)) for p in range(P)]
    return SimulatedCluster(
        adapter, shards, epochs=e, scheme=scheme, engine=engine,
        shuffle_ring=shuffle_ring, cost=CostModel(t_wc=3.0),
        execute_updates=False, seed=seed,
    ), adapter


config = st.tuples(
    st.integers(1, 9),                       # P
    st.integers(1, 4),                       # e
    st.integers(1, 6),                       # L
    st.sampled_from(["rounds", "tworound"]),  # scheme
    st.sampled_from(["sync", "async"]),      # engine
    st.booleans(),                           # shuffle_ring
)


class TestProtocolProperties:
    @given(config)
    @settings(max_examples=60, deadline=None)
    def test_every_machine_holds_final_model(self, cfg):
        P, e, L, scheme, engine, shuf = cfg
        cluster, _ = build(P, e, L, scheme, engine, shuf)
        cluster.w_step(0.0)
        assert cluster.model_copies_consistent()

    @given(config)
    @settings(max_examples=60, deadline=None)
    def test_every_submodel_finishes_somewhere(self, cfg):
        # Stored copies are visit-time snapshots; the machine visited last
        # must hold a copy whose broadcast set is exhausted (done), and
        # every machine must hold a copy with completed training.
        P, e, L, scheme, engine, shuf = cfg
        cluster, adapter = build(P, e, L, scheme, engine, shuf)
        cluster.w_step(0.0)
        for spec in adapter.submodel_specs():
            copies = [
                cluster._stores[p][spec.sid] for p in cluster.machines
            ]
            assert any(c.done for c in copies)
            assert all(c.training_done for c in copies)

    @given(config)
    @settings(max_examples=40, deadline=None)
    def test_hop_count_formula(self, cfg):
        P, e, L, scheme, engine, shuf = cfg
        cluster, adapter = build(P, e, L, scheme, engine, shuf)
        stats = cluster.w_step(0.0)
        M = adapter.n_submodels
        if scheme == "rounds":
            expected = M * (P * (e + 1) - 2) if P > 1 else M * (e - 1)
        else:
            expected = M * (2 * P - 2) if P > 1 else 0
        assert stats.n_messages == expected

    @given(config)
    @settings(max_examples=40, deadline=None)
    def test_comp_time_independent_of_engine_and_shuffle(self, cfg):
        P, e, L, scheme, _, _ = cfg
        totals = []
        for engine in ("sync", "async"):
            for shuf in (False, True):
                cluster, _ = build(P, e, L, scheme, engine, shuf)
                totals.append(cluster.w_step(0.0).comp_time)
        assert np.allclose(totals, totals[0])

    @given(config, st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_given_seed(self, cfg, seed):
        P, e, L, scheme, engine, shuf = cfg
        a, _ = build(P, e, L, scheme, engine, shuf, seed=seed)
        b, _ = build(P, e, L, scheme, engine, shuf, seed=seed)
        assert a.w_step(0.0).sim_time == b.w_step(0.0).sim_time

    @given(st.integers(2, 8), st.integers(1, 3), st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_async_never_slower_than_sync(self, P, e, L):
        # The tick barrier can only add idle time.
        s, _ = build(P, e, L, "rounds", "sync", False)
        a, _ = build(P, e, L, "rounds", "async", False)
        t_sync = s.w_step(0.0).sim_time
        t_async = a.w_step(0.0).sim_time
        assert t_async <= t_sync + 1e-9
