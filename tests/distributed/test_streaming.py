"""Streaming (paper section 4.3): add/remove data and machines on the fly."""

import numpy as np
import pytest

from .test_cluster import build_cluster


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(100, 8, n_clusters=3, rng=6)


@pytest.fixture(scope="module")
def X_new():
    from repro.data.synthetic import make_clustered

    return make_clustered(25, 8, n_clusters=3, rng=7)


class TestWithinMachineStreaming:
    def test_add_data_grows_shard(self, X, X_new):
        cluster, _ = build_cluster(X, P=3)
        cluster.iteration(0.1)
        n0 = cluster.shards[1].n
        cluster.add_data(1, X_new)
        assert cluster.shards[1].n == n0 + len(X_new)
        assert cluster.n_points == len(X) + len(X_new)

    def test_added_codes_come_from_nested_model(self, X, X_new):
        cluster, adapter = build_cluster(X, P=3)
        cluster.iteration(0.1)
        cluster.add_data(0, X_new)
        shard = cluster.shards[0]
        new_rows = shard.Z[-len(X_new):]
        assert np.array_equal(new_rows, adapter.model.encode(X_new))

    def test_training_continues_after_add(self, X, X_new):
        cluster, _ = build_cluster(X, P=3, seed=1)
        cluster.iteration(1e-3)
        cluster.add_data(2, X_new)
        cluster.iteration(2e-3)
        assert cluster.model_copies_consistent()
        assert np.isfinite(cluster.e_q(2e-3))

    def test_remove_data(self, X):
        cluster, _ = build_cluster(X, P=3)
        n0 = cluster.shards[0].n
        cluster.remove_data(0, [0, 1, 2])
        assert cluster.shards[0].n == n0 - 3
        cluster.iteration(0.1)  # still works

    def test_global_indices_stay_unique(self, X, X_new):
        cluster, _ = build_cluster(X, P=3)
        cluster.add_data(0, X_new)
        cluster.add_data(1, X_new)
        idx = np.concatenate([s.indices for s in cluster.shards.values()])
        assert len(np.unique(idx)) == len(idx)

    def test_add_to_unknown_machine_raises(self, X, X_new):
        cluster, _ = build_cluster(X, P=2)
        with pytest.raises(KeyError):
            cluster.add_data(9, X_new)


class TestMachineStreaming:
    def test_add_machine_joins_ring(self, X, X_new):
        cluster, _ = build_cluster(X, P=3)
        cluster.iteration(0.1)
        new_id = cluster.add_machine(X_new)
        assert new_id == 3
        assert cluster.n_machines == 4
        cluster.topology.validate()

    def test_new_machine_gets_model_copy(self, X, X_new):
        cluster, _ = build_cluster(X, P=3)
        cluster.iteration(0.1)
        new_id = cluster.add_machine(X_new)
        assert cluster.model_copies_consistent()
        # And participates in the next W step.
        cluster.iteration(0.2)
        assert cluster.model_copies_consistent()

    def test_new_machine_data_influences_training(self, X, X_new):
        cluster, adapter = build_cluster(X, P=3, seed=4)
        cluster.iteration(0.1)
        cluster.add_machine(X_new)
        cluster.w_step(0.2)
        store = cluster._stores[cluster.machines[0]]
        spec = adapter.submodel_specs()[0]
        assert store[spec.sid].sgd_state.n_updates == len(X) + len(X_new)

    def test_add_machine_after_position(self, X, X_new):
        cluster, _ = build_cluster(X, P=3)
        new_id = cluster.add_machine(X_new, after=0)
        assert cluster.topology.successor(0) == new_id

    def test_remove_machine_drops_data(self, X):
        cluster, _ = build_cluster(X, P=3)
        lost = cluster.shards[2].n
        cluster.remove_machine(2)
        assert cluster.n_points == len(X) - lost
        cluster.topology.validate()

    def test_remove_then_iterate(self, X):
        cluster, _ = build_cluster(X, P=3, seed=8)
        cluster.iteration(0.1)
        cluster.remove_machine(0)
        cluster.iteration(0.2)
        assert cluster.model_copies_consistent()

    def test_add_empty_machine_rejected(self, X):
        cluster, _ = build_cluster(X, P=2)
        with pytest.raises(ValueError):
            cluster.add_machine(np.zeros((0, 8)))

    def test_remove_unknown_machine_raises(self, X):
        cluster, _ = build_cluster(X, P=2)
        with pytest.raises(KeyError):
            cluster.remove_machine(9)


class TestIngestValidation:
    """add_data routes through the shared DataPlane and fails loudly."""

    def test_wrong_width_rejected(self, X):
        cluster, _ = build_cluster(X, P=3)
        with pytest.raises(ValueError, match="columns"):
            cluster.add_data(0, np.zeros((5, X.shape[1] + 1)))

    def test_empty_batch_rejected(self, X):
        cluster, _ = build_cluster(X, P=3)
        with pytest.raises(ValueError, match="empty"):
            cluster.add_data(0, np.zeros((0, X.shape[1])))

    def test_one_dimensional_batch_rejected(self, X):
        cluster, _ = build_cluster(X, P=3)
        with pytest.raises(ValueError, match="2-d"):
            cluster.add_data(0, np.zeros(X.shape[1]))

    def test_failed_ingest_leaves_shard_untouched(self, X):
        cluster, _ = build_cluster(X, P=3)
        n0 = cluster.shards[0].n
        with pytest.raises(ValueError):
            cluster.add_data(0, np.zeros((5, X.shape[1] + 3)))
        assert cluster.shards[0].n == n0
        assert cluster.dataplane.rows_ingested == 0

    def test_dataplane_counts_ingested_rows(self, X, X_new):
        cluster, _ = build_cluster(X, P=3)
        cluster.add_data(1, X_new)
        cluster.add_data(2, X_new)
        assert cluster.dataplane.rows_ingested == 2 * len(X_new)
        assert cluster.dataplane.n_points == len(X) + 2 * len(X_new)

    def test_fault_counts_lost_shard(self, X):
        from repro.distributed.cluster import FaultEvent

        cluster, _ = build_cluster(X, P=4)
        rows = cluster.shards[2].n
        cluster.w_step(0.1, fault=FaultEvent(machine=2, tick=1))
        assert cluster.dataplane.shards_lost == 1
        assert cluster.dataplane.rows_lost == rows

    def test_planned_removal_not_counted_lost(self, X):
        cluster, _ = build_cluster(X, P=3)
        cluster.remove_machine(1)
        assert cluster.dataplane.shards_lost == 0
