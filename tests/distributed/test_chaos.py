"""Chaos conformance: seeded network degradation, identical everywhere.

The chaos layer's contract is **deterministic delivery**: a
:class:`~repro.distributed.chaos.ChaosConfig` perturbs when messages
travel and what the clock shows, never what is computed. This suite
holds every registered engine to it:

* a seeded loss/delay/reorder/throttle/straggler scenario produces
  *bit-identical* final submodels on the simulated engines and the
  wall-clock ones, with *identical* injected-event counts (the per-link
  RNG streams are engine-invariant);
* chaos changes the reported time, not the bits, relative to a
  chaos-free run;
* ``overlap_send`` hides injected link latency exactly as it hides real
  latency — same bits, smaller clock;
* partitions hold frames until the window heals; stragglers inflate
  exactly the slow machine's compute;
* chaos composes with the fault machinery: drop_shard recovery and
  checkpoint/restore behave under chaos exactly as without it.
"""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.core.penalty import GeometricSchedule
from repro.core.trainer import ParMACTrainer
from repro.distributed import ChaosConfig, PartitionWindow
from repro.distributed.backends import available_backends, get_backend
from repro.distributed.chaos import ChaosShim, LinkChaos, empty_chaos_counters
from repro.distributed.costmodel import ChaosTimeline
from repro.distributed.partition import make_shards, partition_indices

BACKENDS = available_backends()
REFERENCE = "sync"
WALLCLOCK_BACKENDS = ["multiprocess", "tcp"]

#: The scenario every engine must reproduce: all link knobs plus one
#: straggler, rates high enough that every event type actually fires on
#: a short fit.
FULL_CHAOS = ChaosConfig(
    packet_loss_rate=0.2,
    delay_ms=2.0,
    jitter_ms=1.0,
    reorder_probability=0.15,
    bandwidth_mbps=50.0,
    stragglers={1: 1.5},
    seed=7,
)

#: Integer event counters must match *exactly* across engines; float
#: second-counters may differ in the last ulp (summation order).
COUNT_KEYS = ["chaos_hops", "chaos_drops", "chaos_reorders", "chaos_partition_holds"]
SECONDS_KEYS = ["chaos_delay_s", "chaos_throttle_s"]


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=4)


def ba_setup(X, P=3, n_bits=4, seed=0):
    ba = BinaryAutoencoder.linear(X.shape[1], n_bits)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=seed)
    parts = partition_indices(len(X), P, rng=seed)
    return adapter, make_shards(X, adapter.features(X), Z, parts)


def run_fit(X, backend, chaos, *, overlap_send=False, n_iters=2, P=3):
    adapter, shards = ba_setup(X, P=P)
    with ParMACTrainer(
        adapter,
        GeometricSchedule(1.0, 2.0, n_iters),
        backend=backend,
        epochs=2,
        shuffle_within=False,
        seed=0,
        chaos=chaos,
        backend_options={"overlap_send": overlap_send},
    ) as trainer:
        history = trainer.fit(shards)
    params = {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}
    return history, params


# ------------------------------------------------------------------- config
class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="packet_loss_rate"):
            ChaosConfig(packet_loss_rate=1.0)
        with pytest.raises(ValueError, match="delay_ms"):
            ChaosConfig(delay_ms=-1.0)
        with pytest.raises(ValueError, match="bandwidth_mbps"):
            ChaosConfig(bandwidth_mbps=0.0)
        with pytest.raises(ValueError, match="straggler factor"):
            ChaosConfig(stragglers={0: 0.5})
        with pytest.raises(ValueError, match="partition window"):
            ChaosConfig(partitions=[(5.0, 2.0)])

    def test_coerce(self):
        assert ChaosConfig.coerce(None) is None
        cfg = ChaosConfig(delay_ms=1.0)
        assert ChaosConfig.coerce(cfg) is cfg
        assert ChaosConfig.coerce({"delay_ms": 1.0}) == cfg
        with pytest.raises(TypeError, match="chaos must be"):
            ChaosConfig.coerce(3.0)

    def test_active(self):
        assert not ChaosConfig().active()
        assert not ChaosConfig(stragglers={0: 1.0}).active()
        assert ChaosConfig(delay_ms=0.1).active()
        assert ChaosConfig(partitions=[(0.0, 1.0)]).active()
        assert ChaosConfig(stragglers={0: 2.0}).active()

    def test_partition_tuple_coercion(self):
        cfg = ChaosConfig(partitions=[(1.0, 2.0), (3.0, 4.0, ((0, 1),))])
        assert all(isinstance(w, PartitionWindow) for w in cfg.partitions)
        assert cfg.partitions[1].links == ((0, 1),)

    def test_partition_window_holds(self):
        w = PartitionWindow(1.0, 3.0, links=((0, 1),))
        assert w.holds(0, 1, 0.5) == 0.0  # before the window
        assert w.holds(0, 1, 2.0) == pytest.approx(1.0)  # held until heal
        assert w.holds(1, 0, 2.0) == 0.0  # other direction not cut
        assert w.holds(0, 1, 3.0) == 0.0  # healed
        full = PartitionWindow(0.0, 2.0)  # links=None cuts everything
        assert full.holds(4, 7, 1.5) == pytest.approx(0.5)


class TestLinkSampler:
    def test_link_streams_are_seeded_per_link(self):
        cfg = ChaosConfig(packet_loss_rate=0.3, jitter_ms=5.0, seed=11)
        a = LinkChaos(cfg, 0, 1, empty_chaos_counters())
        b = LinkChaos(cfg, 0, 1, empty_chaos_counters())
        other = LinkChaos(cfg, 1, 0, empty_chaos_counters())
        seq_a = [a.verdict(1000, 0.0) for _ in range(20)]
        seq_b = [b.verdict(1000, 0.0) for _ in range(20)]
        seq_other = [other.verdict(1000, 0.0) for _ in range(20)]
        assert seq_a == seq_b  # same link, same seed: identical stream
        assert seq_a != seq_other  # direction changes the stream

    def test_loss_is_bounded(self):
        """A near-1 loss rate degrades the clock, never hangs the sampler."""
        from repro.distributed.chaos import _MAX_DROPS

        cfg = ChaosConfig(packet_loss_rate=0.999, seed=0)
        counters = empty_chaos_counters()
        link = LinkChaos(cfg, 0, 1, counters)
        for _ in range(50):
            link.verdict(100, 0.0)
        assert counters["chaos_drops"] <= 50 * _MAX_DROPS

    def test_timeline_and_shim_share_the_stream(self):
        """The virtual front end and the wall-clock front end draw the
        same verdicts for the same hop sequence — count parity by
        construction."""
        cfg = FULL_CHAOS
        timeline = ChaosTimeline(cfg)
        shim = ChaosShim(cfg, rank=0, clock=lambda: 0.0)
        virtual = [timeline.hop_penalty(0, 1, 5000, 0.0) for _ in range(30)]
        real = [shim.send_delay(1, 5000) for _ in range(30)]
        assert virtual == real
        for key in COUNT_KEYS:
            assert timeline.counters[key] == shim.counters[key]

    def test_self_hop_is_free(self):
        timeline = ChaosTimeline(FULL_CHAOS)
        assert timeline.hop_penalty(2, 2, 10_000, 0.0) == 0.0
        assert timeline.counters["chaos_hops"] == 0

    def test_straggler_charges(self):
        timeline = ChaosTimeline(ChaosConfig(stragglers={1: 2.0}))
        assert timeline.charge_work(0, 10.0) == 10.0
        assert timeline.charge_work(1, 10.0) == 20.0
        assert timeline.counters["chaos_straggler_s"] == pytest.approx(10.0)
        shim = ChaosShim(ChaosConfig(stragglers={1: 2.0}), rank=1, clock=lambda: 0.0)
        assert shim.charge_straggler(0.5) == pytest.approx(0.5)
        assert shim.counters["chaos_straggler_s"] == pytest.approx(0.5)


# -------------------------------------------------------------- conformance
class TestChaosConformance:
    """Every engine, one seeded scenario, identical bits and counts."""

    @pytest.fixture(scope="class")
    def runs(self, X):
        cache = {}

        def _run(name):
            if name not in cache:
                cache[name] = run_fit(X, name, FULL_CHAOS)
            return cache[name]

        return _run

    @pytest.mark.parametrize("name", [b for b in BACKENDS if b != REFERENCE])
    def test_bit_parity_under_chaos(self, runs, name):
        _, ref_params = runs(REFERENCE)
        _, params = runs(name)
        assert set(params) == set(ref_params)
        for sid in ref_params:
            assert np.array_equal(params[sid], ref_params[sid]), (name, sid)

    @pytest.mark.parametrize("name", [b for b in BACKENDS if b != REFERENCE])
    def test_event_count_parity(self, runs, name):
        """Drop/reorder *counts* match across engines, per iteration —
        the per-link RNG streams are engine-invariant."""
        ref_history, _ = runs(REFERENCE)
        history, _ = runs(name)
        for ref_rec, rec in zip(ref_history.records, history.records):
            for key in COUNT_KEYS:
                assert rec.extra[key] == ref_rec.extra[key], (name, key)
            for key in SECONDS_KEYS:
                assert rec.extra[key] == pytest.approx(
                    ref_rec.extra[key], rel=1e-9
                ), (name, key)
        assert history.records[0].extra["chaos_drops"] > 0
        assert history.records[0].extra["chaos_reorders"] > 0

    @pytest.mark.parametrize("name", BACKENDS)
    def test_chaos_is_timing_only(self, runs, X, name):
        """Same engine, chaos on vs off: identical bits."""
        _, chaotic = runs(name)
        _, clean = run_fit(X, name, None)
        for sid in clean:
            assert np.array_equal(chaotic[sid], clean[sid]), (name, sid)

    def test_sim_clock_degrades(self, runs, X):
        """The simulated engines charge the injected seconds virtually."""
        chaotic_history, _ = runs(REFERENCE)
        clean_history, _ = run_fit(X, REFERENCE, None)
        for chaotic, clean in zip(
            chaotic_history.records, clean_history.records
        ):
            assert chaotic.time > clean.time

    def test_counters_absent_without_chaos(self, X):
        history, _ = run_fit(X, REFERENCE, None)
        assert not any(
            k.startswith("chaos_") for k in history.records[0].extra
        )


# ----------------------------------------------------- knobs, one at a time
class TestKnobs:
    def test_partition_holds_and_heals(self, X):
        """A window cutting every link early in the iteration holds
        frames until it heals: events counted, time inflated, bits
        unchanged."""
        chaos = ChaosConfig(partitions=[PartitionWindow(0.0, 200.0)], seed=3)
        history, params = run_fit(X, REFERENCE, chaos)
        clean_history, clean_params = run_fit(X, REFERENCE, None)
        assert history.records[0].extra["chaos_partition_holds"] > 0
        assert history.records[0].time > clean_history.records[0].time
        for sid in clean_params:
            assert np.array_equal(params[sid], clean_params[sid])

    def test_straggler_slows_only_the_slow_machine(self, X):
        """Straggler factor on one machine: the sync engine's W step
        stretches (the ring waits on the slow machine) and the Z step
        charges the factor on that machine only."""
        slow = ChaosConfig(stragglers={0: 3.0})
        history, params = run_fit(X, REFERENCE, slow)
        clean_history, clean_params = run_fit(X, REFERENCE, None)
        assert history.records[0].time > clean_history.records[0].time
        assert history.records[0].extra["chaos_straggler_s"] > 0
        for sid in clean_params:
            assert np.array_equal(params[sid], clean_params[sid])

    def test_bandwidth_throttle_charges_wire_time(self, X):
        chaos = ChaosConfig(bandwidth_mbps=1.0)
        history, _ = run_fit(X, REFERENCE, chaos)
        assert history.records[0].extra["chaos_throttle_s"] > 0

    def test_overlap_send_hides_injected_latency(self, X):
        """The straggler/delay scenario the ISSUE names: overlapped
        sends hide injected link latency — same bits, smaller clock —
        on the discrete-event engine that models the NIC timeline."""
        chaos = ChaosConfig(delay_ms=40.0, stragglers={1: 1.3}, seed=5)
        blocking_history, blocking_params = run_fit(
            X, "async", chaos, overlap_send=False
        )
        overlap_history, overlap_params = run_fit(
            X, "async", chaos, overlap_send=True
        )
        for sid in blocking_params:
            assert np.array_equal(overlap_params[sid], blocking_params[sid])
        assert (
            overlap_history.records[0].time < blocking_history.records[0].time
        )

    def test_seed_changes_the_event_sequence(self, X):
        a, _ = run_fit(X, REFERENCE, ChaosConfig(packet_loss_rate=0.3, seed=1))
        b, _ = run_fit(X, REFERENCE, ChaosConfig(packet_loss_rate=0.3, seed=2))
        drops = lambda h: [r.extra["chaos_drops"] for r in h.records]  # noqa: E731
        assert drops(a) != drops(b)


# ------------------------------------------------- chaos x fault machinery
@pytest.mark.slow
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestChaosWithFaults:
    def test_drop_shard_survives_under_chaos(self, X, name):
        """A SIGKILL'd worker under active chaos: the recovery path
        (abort, excise, re-plan, retry) must engage exactly as without
        chaos."""
        from tests.distributed.test_wallclock_faults import killable_setup

        adapter, shards = killable_setup(X, P=4, kills={2: 2e-3})
        with ParMACTrainer(
            adapter,
            GeometricSchedule(1e-3, 2.0, 4),
            backend=name,
            seed=0,
            fault_policy="drop_shard",
            chaos=ChaosConfig(
                packet_loss_rate=0.1, delay_ms=1.0, jitter_ms=1.0, seed=3
            ),
            backend_options={"worker_timeout": 60.0},
        ) as trainer:
            history = trainer.fit(shards)
        assert len(history) == 4
        assert sum(r.extra["shards_lost"] for r in history.records) == 1
        assert history.records[-1].extra["n_machines"] == 3
        assert all(np.isfinite(r.e_q) for r in history.records)

    def test_checkpoint_restore_under_chaos(self, X, name, tmp_path):
        """Snapshot mid-fit under chaos, restore into a fresh backend
        with the same chaos, finish: bit-identical to the uninterrupted
        chaotic run (chaos is timing-only, so it is deliberately absent
        from the checkpoint's compat contract)."""
        from repro.distributed.dataplane import ClusterState

        chaos = ChaosConfig(packet_loss_rate=0.15, delay_ms=1.0, seed=9)
        mus = [1e-3 * 2.0**i for i in range(4)]
        cut = 2

        def fresh_backend():
            return get_backend(name)(
                epochs=2, shuffle_within=True, seed=0, chaos=chaos
            )

        adapter, shards = ba_setup(X)
        with fresh_backend() as backend:
            backend.setup(adapter, shards)
            for mu in mus:
                backend.run_iteration(mu)
        ref = {
            s.sid: adapter.get_params(s).copy()
            for s in adapter.submodel_specs()
        }

        path = tmp_path / "chaotic.ckpt"
        adapter2, shards2 = ba_setup(X)
        with fresh_backend() as backend:
            backend.setup(adapter2, shards2)
            for mu in mus[:cut]:
                backend.run_iteration(mu)
            backend.checkpoint().save(path)

        with fresh_backend() as backend:
            backend.restore(ClusterState.load(path))
            for mu in mus[cut:]:
                stats = backend.run_iteration(mu)
                assert stats.extra["chaos_hops"] > 0
            got = {
                s.sid: backend.adapter.get_params(s).copy()
                for s in backend.adapter.submodel_specs()
            }
        for sid in ref:
            assert np.array_equal(got[sid], ref[sid]), (name, sid)
