"""Regressions for the bugs the chaos harness shook out.

Three wall-clock failure modes that only surface under degraded
networks, each pinned by a test:

* the TCP mesh/JOIN handshake dialled each peer exactly once with a
  flat ``connect_timeout`` — a peer slow to reach ``listen()`` (or with
  a momentarily full backlog) failed the whole setup even though it
  would have been ready milliseconds later (now: bounded
  retry-with-backoff);
* ``MultiprocessBackend.worker_timeout`` defaulted to ``None`` — a
  worker that wedged *without dying* (stuck syscall, livelock, paused
  by the operator) hung ``fit()`` forever, because only deaths are
  detected by the liveness poll (now: finite default, and the timeout
  error names the stalled-but-alive workers, distinct from a fault);
* ``_read_frames`` let a mid-handshake ``socket.timeout`` escape as a
  raw OS error instead of a :class:`ProtocolError`, so the drop_shard
  abort-and-recover path never engaged on a *stalled* peer (only on a
  dead one, whose EOF cascade it was written for).

Plus the composed scenario: a worker paused (SIGSTOP) mid-fit and
resumed (SIGCONT) — a partition that heals — must not cost a shard or a
fit, and checkpoint/restore must still work afterwards.
"""

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.penalty import GeometricSchedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import get_backend
from repro.distributed.backends.mp import MultiprocessBackend
from repro.distributed.backends.tcp import (
    TCPBackend,
    _connect_with_retry,
    _read_frames,
)
from repro.distributed.framing import ProtocolError, encode_hello

from tests.distributed.test_wallclock_faults import (
    FAULT_DETECTION_TIMEOUT_S,
    WALLCLOCK_BACKENDS,
    ba_setup,
)


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(120, 8, n_clusters=3, rng=4)


# ------------------------------------------------------- connect with retry
class TestConnectRetry:
    def test_slow_to_accept_peer_is_retried(self):
        """The regression: the listener comes up *after* the first dial.

        A single ``create_connection`` would raise ConnectionRefused on
        attempt one; the retry loop must keep dialling until the peer
        binds, within the overall budget.
        """
        # Reserve a port, then release it so the first dial is refused.
        probe = socket.socket()
        try:
            probe.bind(("127.0.0.1", 0))
            addr = probe.getsockname()
        finally:
            probe.close()

        listener = socket.socket()
        accepted = []

        def late_listen():
            time.sleep(0.5)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(addr)
            listener.listen(1)
            conn, _ = listener.accept()
            accepted.append(conn)

        t = threading.Thread(target=late_listen, daemon=True)
        t.start()
        try:
            conn = _connect_with_retry(addr, timeout=10.0)
            conn.close()
            t.join(timeout=5.0)
            assert accepted
        finally:
            listener.close()
            for c in accepted:
                c.close()

    def test_budget_exhaustion_raises_protocol_error(self):
        """Nobody ever listens: the retry loop must give up within the
        budget with a ProtocolError naming the address, not spin."""
        probe = socket.socket()
        try:
            probe.bind(("127.0.0.1", 0))
            addr = probe.getsockname()
        finally:
            probe.close()
        t0 = time.monotonic()
        with pytest.raises(ProtocolError, match="could not connect"):
            _connect_with_retry(addr, timeout=0.3)
        assert time.monotonic() - t0 < 5.0

    @pytest.mark.slow
    def test_mesh_setup_tolerates_slow_worker(self, X):
        """End to end: a full TCP fit still comes up when worker bind
        and dial are skewed (the retry makes ordering irrelevant)."""
        adapter, shards = ba_setup(X)
        with ParMACTrainer(
            adapter,
            GeometricSchedule(1e-3, 2.0, 2),
            backend="tcp",
            seed=0,
            backend_options={"connect_timeout": 10.0},
        ) as trainer:
            history = trainer.fit(shards)
        assert np.isfinite(history.records[-1].e_q)


# -------------------------------------------------------- handshake stalls
class TestReadFramesStall:
    def test_mid_frame_stall_raises_protocol_error(self):
        """A peer that sends half a frame then stops: ProtocolError (so
        fault handling engages), naming the mid-frame state — not a raw
        socket timeout."""
        a, b = socket.socketpair()
        try:
            a.sendall(encode_hello(3)[:-2])  # header + partial payload
            with pytest.raises(ProtocolError, match="stalled mid-handshake.*mid-frame"):
                _read_frames(b, 1, timeout=0.2)
        finally:
            a.close()
            b.close()

    def test_between_frames_stall_raises_protocol_error(self):
        """A peer that connects then never sends: same normalisation,
        labelled between-frames."""
        a, b = socket.socketpair()
        try:
            with pytest.raises(
                ProtocolError, match="stalled mid-handshake.*between frames"
            ):
                _read_frames(b, 1, timeout=0.2)
        finally:
            a.close()
            b.close()

    def test_timeout_does_not_leak_as_os_error(self):
        """The exact regression: the raised error must be catchable as
        ProtocolError by callers that key fault recovery on it."""
        a, b = socket.socketpair()
        try:
            try:
                _read_frames(b, 1, timeout=0.1)
            except ProtocolError:
                pass  # what the drop_shard path catches
            else:
                pytest.fail("stall did not raise")
        finally:
            a.close()
            b.close()


# --------------------------------------------------------- stalled workers
from dataclasses import dataclass

from repro.autoencoder.adapter import BAAdapter
from repro.distributed.partition import Shard


@dataclass
class StallShard(Shard):
    """A shard whose worker wedges — alive, not dead — in its W step."""

    stall_forever: bool = False


class WedgingAdapter(BAAdapter):
    """Spins forever on a marked shard: the alive-but-unresponsive case
    the liveness poll cannot see (only deaths are detectable)."""

    def w_update(self, spec, theta, state, shard, mu, **kwargs):
        if getattr(shard, "stall_forever", False):
            while True:  # never returns, never dies
                time.sleep(1.0)
        return super().w_update(spec, theta, state, shard, mu, **kwargs)


class TestWorkerTimeout:
    def test_finite_default(self):
        """The regression: None meant a wedged worker hung fit() forever."""
        assert MultiprocessBackend().worker_timeout == 300.0
        assert TCPBackend().worker_timeout == 300.0

    def test_none_still_accepted(self):
        assert MultiprocessBackend(worker_timeout=None).worker_timeout is None

    @pytest.mark.slow
    @pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
    def test_stalled_worker_times_out_as_stall_not_fault(self, X, name):
        """A worker alive but wedged in its W step: the gather must end
        at the deadline with an error that names the stalled ranks and
        says they are alive — not hang, and not claim a death."""
        adapter, shards = ba_setup(X, P=3, adapter_cls=WedgingAdapter)
        shards = [
            StallShard(
                X=s.X, F=s.F, Z=s.Z, indices=s.indices, stall_forever=(p == 1)
            )
            for p, s in enumerate(shards)
        ]
        backend = get_backend(name)(seed=0, worker_timeout=3.0)
        try:
            backend.setup(adapter, shards)
            t0 = time.monotonic()
            with pytest.raises(
                RuntimeError, match="alive but unresponsive"
            ) as excinfo:
                backend.run_iteration(1e-3)
            assert time.monotonic() - t0 < FAULT_DETECTION_TIMEOUT_S
            # The wedged rank is named (so are peers stalled behind it
            # on the ring — the coordinator cannot tell them apart, and
            # says so instead of claiming a death).
            import re

            named = re.search(r"worker\(s\) \[([^\]]*)\]", str(excinfo.value))
            assert named and "1" in named.group(1).split(", ")
            assert backend.worker_pids == []  # pool torn down, nothing wedged
        finally:
            backend.close()


# ------------------------------------------------- partition, then healing
@pytest.mark.slow
@pytest.mark.parametrize("name", WALLCLOCK_BACKENDS)
class TestPartitionThenHeal:
    def test_paused_worker_heals_without_losing_its_shard(self, X, name):
        """SIGSTOP one worker mid-fit, SIGCONT it before any deadline: a
        partition that heals must cost time, not a shard — drop_shard
        must NOT fire (the machine never died), and the fit finishes on
        all machines. Afterwards checkpoint/restore still round-trips."""
        adapter, shards = ba_setup(X, P=3)
        backend = get_backend(name)(
            seed=0,
            fault_policy="drop_shard",
            worker_timeout=FAULT_DETECTION_TIMEOUT_S * 3,
        )
        try:
            backend.setup(adapter, shards)
            backend.run_iteration(1e-3)
            victim = backend.worker_pids[1]
            os.kill(victim, signal.SIGSTOP)

            result = {}

            def run():
                result["stats"] = backend.run_iteration(2e-3)

            t = threading.Thread(target=run, daemon=True)
            t.start()
            time.sleep(1.0)  # the ring is stalled behind the paused peer
            assert t.is_alive()
            os.kill(victim, signal.SIGCONT)  # heal
            t.join(timeout=FAULT_DETECTION_TIMEOUT_S * 3)
            assert not t.is_alive()
            stats = result["stats"]
            assert stats.shards_lost == 0  # healed, not excised
            assert stats.n_machines == 3
            assert np.isfinite(stats.e_q)

            snapshot = backend.checkpoint()
        finally:
            backend.close()

        with get_backend(name)(seed=0) as restored:
            restored.restore(snapshot)
            stats = restored.run_iteration(4e-3)
            assert np.isfinite(stats.e_q)
            assert stats.n_machines == 3
