"""Test package (enables relative imports of shared helpers)."""
