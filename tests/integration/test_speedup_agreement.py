"""The discrete-event engine reproduces the analytical speedup (fig. 10).

The async engine executes the real ring protocol with virtual-clock costs;
its measured speedup must agree with the section-5 model — near-perfect up
to P = M, then saturating — exactly the comparison the paper draws between
its experimental (top) and theoretical (bottom) rows of fig. 10.
"""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costmodel import CostModel
from repro.distributed.partition import Shard, partition_indices
from repro.perfmodel.speedup import SpeedupParams, speedup


def timing_cluster(N, n_bits, D, P, e, cost, engine="async"):
    """Timing-only cluster (no numerics) with equal shards."""
    ba = BinaryAutoencoder.linear(D, n_bits)
    adapter = BAAdapter(ba)
    parts = partition_indices(N, P, shuffle=False)
    shards = [
        Shard(
            X=np.zeros((len(idx), D)),
            F=np.zeros((len(idx), D)),
            Z=np.zeros((len(idx), n_bits), dtype=np.uint8),
            indices=idx,
        )
        for idx in parts
    ]
    return SimulatedCluster(
        adapter, shards, epochs=e, cost=cost, engine=engine,
        execute_updates=False, seed=0,
    ), adapter


def measure_iteration_time(N, n_bits, D, P, e, cost):
    cluster, _ = timing_cluster(N, n_bits, D, P, e, cost)
    w = cluster.w_step(0.0)
    z = cluster.z_step(0.0)
    return w.sim_time + z.sim_time


class TestEngineVsTheory:
    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    def test_divisible_P_matches_model(self, P):
        # M = 2L = 32 submodels; equal shards; divisible P.
        N, L, D, e = 3200, 16, 20, 1
        cost = CostModel(t_wr=1.0, t_wc=100.0, t_zr=5.0)
        T1 = measure_iteration_time(N, L, D, 1, e, cost)
        TP = measure_iteration_time(N, L, D, P, e, cost)
        measured = T1 / TP
        params = SpeedupParams(N=N, M=2 * L, e=e, t_wr=1.0, t_wc=100.0, t_zr=5.0)
        predicted = float(speedup(P, params))
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_speedup_saturates_past_M(self):
        # Engine speedup keeps the fig. 4 shape: grows to ~M, then flattens.
        N, L, D, e = 1600, 4, 10, 1  # M = 8
        cost = CostModel(t_wr=1.0, t_wc=200.0, t_zr=2.0)
        T1 = measure_iteration_time(N, L, D, 1, e, cost)
        S = {P: T1 / measure_iteration_time(N, L, D, P, e, cost)
             for P in (2, 4, 8, 16, 32)}
        assert S[4] > S[2]
        assert S[8] > S[4]
        # Past M the gains are marginal at best.
        assert S[32] < S[8] * 2.0

    def test_more_epochs_lower_speedup(self):
        # Fig. 10: "the speedups flatten as the number of epochs (and
        # consequently the amount of communication) increases".
        N, L, D = 1600, 8, 10
        cost = CostModel(t_wr=1.0, t_wc=500.0, t_zr=1.0)
        speeds = {}
        for e in (1, 4):
            T1 = measure_iteration_time(N, L, D, 1, e, cost)
            TP = measure_iteration_time(N, L, D, 8, e, cost)
            speeds[e] = T1 / TP
        assert speeds[4] < speeds[1]

    def test_dominant_z_step_perfect_speedup(self):
        # Section 5.2: t_zr >> t_wr, t_wc implies S(P) ~= P.
        N, L, D, e = 1600, 4, 10, 1
        cost = CostModel(t_wr=1.0, t_wc=10.0, t_zr=10_000.0)
        T1 = measure_iteration_time(N, L, D, 1, e, cost)
        for P in (2, 4, 8):
            S = T1 / measure_iteration_time(N, L, D, P, e, cost)
            assert S == pytest.approx(P, rel=0.05)

    def test_sync_and_async_agree_on_symmetric_workload(self):
        N, L, D, e = 1600, 8, 10, 2
        cost = CostModel(t_wr=1.0, t_wc=50.0, t_zr=3.0)
        c_sync, _ = timing_cluster(N, L, D, 4, e, cost, engine="sync")
        c_async, _ = timing_cluster(N, L, D, 4, e, cost, engine="async")
        t_sync = c_sync.w_step(0.0).sim_time
        t_async = c_async.w_step(0.0).sim_time
        # The async engine can only be as fast or faster (no tick barriers).
        assert t_async <= t_sync * 1.01
        assert t_async >= 0.5 * t_sync

    def test_tworound_cuts_communication(self):
        # Section 4.2: e epochs in 2 rounds instead of e+1.
        N, L, D, e = 1600, 8, 10, 4
        cost = CostModel(t_wr=1.0, t_wc=1000.0, t_zr=1.0)
        c_rounds, _ = timing_cluster(N, L, D, 8, e, cost)
        c_two, _ = timing_cluster(N, L, D, 8, e, cost)
        c_two.scheme = "tworound"
        w_rounds = c_rounds.w_step(0.0)
        w_two = c_two.w_step(0.0)
        assert w_two.comm_time < w_rounds.comm_time * 0.6
        assert w_two.sim_time < w_rounds.sim_time
