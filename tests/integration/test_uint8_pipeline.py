"""Section 8.4 memory path: train from uint8-at-rest features.

SIFT-1B stores one byte per feature and dequantises per minibatch / per
point. Training on the dequantised data must closely track training on
the original floats — quantisation noise is far below the SGD noise floor.
"""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.core.mac import MACTrainerBA
from repro.core.penalty import GeometricSchedule
from repro.data.quantize import Uint8Store
from repro.data.synthetic import make_sift_like


@pytest.fixture(scope="module")
def clouds():
    X = make_sift_like(400, 16, n_clusters=6, rng=30)
    store = Uint8Store(X)
    return X, store


class TestUint8Pipeline:
    def test_quantisation_error_small_vs_data_scale(self, clouds):
        X, store = clouds
        err = np.abs(store.all_rows() - X).max()
        assert err < 0.01 * np.abs(X).max()

    def test_mac_training_tracks_float_training(self, clouds):
        X, store = clouds
        sched = GeometricSchedule(1e-2, 2.0, 6)
        ba_f = BinaryAutoencoder.linear(16, 4)
        h_f = MACTrainerBA(ba_f, sched, seed=0).fit(X)
        ba_q = BinaryAutoencoder.linear(16, 4)
        h_q = MACTrainerBA(ba_q, sched, seed=0).fit(store.all_rows())
        assert h_q.records[-1].e_ba == pytest.approx(
            h_f.records[-1].e_ba, rel=0.05
        )

    def test_minibatch_access_pattern(self, clouds):
        # The W-step access pattern: dequantise one minibatch at a time.
        X, store = clouds
        from repro.optim.sgd import minibatch_indices

        batches = minibatch_indices(len(store), 50, shuffle=True, rng=0)
        seen = 0
        for idx in batches:
            block = store.rows(idx)
            assert block.dtype == np.float64
            seen += len(block)
        assert seen == len(X)

    def test_memory_at_rest_is_one_byte_per_feature(self, clouds):
        X, store = clouds
        assert store.nbytes == X.shape[0] * X.shape[1]
