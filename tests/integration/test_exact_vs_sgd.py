"""Section 6 ablation: SGD W step vs exact (allreduced) W step.

"One to two epochs in the W step make ParMAC very similar to MAC using an
exact step."
"""

import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.autoencoder.zstep import zstep
from repro.distributed.allreduce import exact_w_step_ba
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.partition import make_shards, partition_indices


@pytest.fixture(scope="module")
def problem():
    from repro.data.synthetic import make_clustered

    X = make_clustered(300, 12, n_clusters=5, rng=10)
    return X


def run_exact(X, mus, P=4, seed=0):
    """MAC iterations with the exact distributed W step."""
    ba = BinaryAutoencoder.linear(12, 6)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, 6, rng=seed)
    parts = partition_indices(len(X), P, rng=seed)
    shards = make_shards(X, X, Z, parts)
    eqs = []
    for mu in mus:
        exact_w_step_ba(ba, shards, svm_steps=40)
        for s in shards:
            s.Z = zstep(s.X, ba.decoder.B, ba.decoder.c,
                        adapter._encode_features(s.F), mu, Z0=s.Z)
        eqs.append(sum(adapter.e_q_shard(s, mu) for s in shards))
    return ba, eqs


def run_sgd(X, mus, P=4, epochs=2, seed=0):
    ba = BinaryAutoencoder.linear(12, 6)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, 6, rng=seed)
    parts = partition_indices(len(X), P, rng=seed)
    shards = make_shards(X, X, Z, parts)
    cluster = SimulatedCluster(adapter, shards, epochs=epochs, seed=seed)
    eqs = []
    for mu in mus:
        cluster.iteration(mu)
        eqs.append(cluster.e_q(mu))
    return ba, eqs


class TestExactVsSGD:
    def test_epochs_converge_to_exact(self, problem):
        # Section 8.2: "as the number of epochs increases, the W step is
        # solved more exactly (8 epochs is practically exact)". The
        # SGD/exact E_Q ratio must shrink monotonically with e.
        X = problem
        mus = [1e-3 * 2**i for i in range(8)]
        _, eq_exact = run_exact(X, mus)
        ratios = []
        for e in (1, 2, 4, 8):
            _, eq = run_sgd(X, mus, epochs=e)
            ratios.append(eq[-1] / eq_exact[-1])
        assert all(a > b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 1.3  # e = 8 is practically exact

    def test_both_reduce_e_q(self, problem):
        X = problem
        mus = [1e-3 * 2**i for i in range(8)]
        _, eq_exact = run_exact(X, mus)
        _, eq_sgd = run_sgd(X, mus)
        assert eq_exact[-1] < eq_exact[0]
        assert eq_sgd[-1] < eq_sgd[0]
