"""RBF-encoder BAs on the ring: kernel features live in the shards.

Section 8.4's memory discipline: kernel values are computed once (stored
quantised in the paper) and the travelling SVM submodels train on them —
the raw inputs never need re-kernelising per visit. The shards' F matrix
carries the kernel features; this test exercises the whole path through
the public ParMAC trainer.
"""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.core.parmac import ParMACTrainerBA
from repro.core.penalty import GeometricSchedule


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(250, 10, n_clusters=5, rng=20)


class TestRBFThroughParMAC:
    def test_trains_on_simulated_ring(self, X):
        ba = BinaryAutoencoder.rbf(X, n_centres=40, n_bits=6, rng=0)
        trainer = ParMACTrainerBA(
            ba, GeometricSchedule(1e-3, 2.0, 6), n_machines=4, seed=0
        )
        h = trainer.fit(X)
        assert np.isfinite(h.records[-1].e_q)
        assert h.records[-1].e_q < h.records[0].e_q
        assert trainer.cluster_.model_copies_consistent()

    def test_shards_store_kernel_features(self, X):
        ba = BinaryAutoencoder.rbf(X, n_centres=40, n_bits=6, rng=0)
        trainer = ParMACTrainerBA(
            ba, GeometricSchedule(1e-3, 2.0, 2), n_machines=3, seed=0
        )
        trainer.fit(X)
        for p in trainer.cluster_.machines:
            shard = trainer.cluster_.shards[p]
            assert shard.F.shape[1] == 40  # kernel features, not raw dims
            assert shard.X.shape[1] == 10  # decoder still sees raw space

    def test_trains_on_multiprocess_ring(self, X):
        ba = BinaryAutoencoder.rbf(X, n_centres=30, n_bits=5, rng=0)
        trainer = ParMACTrainerBA(
            ba, GeometricSchedule(1e-3, 2.0, 3), n_machines=2,
            backend="multiprocess", seed=0,
        )
        h = trainer.fit(X)
        assert np.isfinite(h.records[-1].e_q)

    def test_quantised_kernel_features_close(self, X):
        # The uint8 kernel storage of section 8.4 perturbs codes only
        # marginally.
        from repro.autoencoder.encoder import gaussian_kernel_features

        ba = BinaryAutoencoder.rbf(X, n_centres=40, n_bits=6, rng=0)
        enc = ba.encoder
        K = gaussian_kernel_features(X, enc.centres, enc.sigma)
        Kq = gaussian_kernel_features(X, enc.centres, enc.sigma, quantize=True)
        assert np.abs(K - Kq.astype(np.float64) / 255.0).max() <= 0.5 / 255 + 1e-12
