"""End-to-end retrieval: the paper's qualitative orderings (section 8).

Shape targets (absolute numbers are synthetic-data-specific):
* the BA achieves lower nested reconstruction error than its tPCA
  initialisation with an optimal decoder — E_BA is the BA's objective;
* the RBF encoder beats tPCA in recall across small R (fig. 12);
* the linear encoder catches up at larger R (fig. 12's crossing pattern);
* early stopping guarantees validation precision never ends below the best
  iterate (section 3.1).
"""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.decoder import LinearDecoder
from repro.core.evaluation import PrecisionEvaluator
from repro.core.mac import MACTrainerBA
from repro.core.penalty import GeometricSchedule
from repro.data.synthetic import make_sift_like
from repro.retrieval.baselines import TruncatedPCAHash
from repro.retrieval.groundtruth import euclidean_knn
from repro.retrieval.hamming import pack_bits
from repro.retrieval.metrics import recall_at_R

L = 16


@pytest.fixture(scope="module")
def workload():
    cloud = make_sift_like(1000, 32, n_clusters=10, rng=0)
    X, Q = cloud[:900], cloud[900:950]
    nn1 = euclidean_knn(Q, X, 1)[:, 0]
    return X, Q, nn1


@pytest.fixture(scope="module")
def trained(workload):
    # The orderings below do not need the exact Z step; the alternating
    # solver (what auto dispatch picked before the L=16 enumeration cutoff)
    # keeps this 28-iteration fixture fast.
    X, Q, nn1 = workload
    tpca = TruncatedPCAHash(L).fit(X)
    kw = dict(w_epochs=2, zstep_method="alternate", seed=0)
    ba_lin = BinaryAutoencoder.linear(32, L)
    MACTrainerBA(ba_lin, GeometricSchedule(1e-2, 2.0, 14), **kw).fit(X)
    ba_rbf = BinaryAutoencoder.rbf(X, n_centres=200, n_bits=L, rng=0)
    MACTrainerBA(ba_rbf, GeometricSchedule(1e-2, 2.0, 14), **kw).fit(X)
    return tpca, ba_lin, ba_rbf


def recall(X, Q, nn1, encode, R):
    return recall_at_R(pack_bits(encode(Q)), pack_bits(encode(X)), nn1, R)


class TestReconstruction:
    def test_ba_beats_tpca_codes_on_e_ba(self, workload, trained):
        X, _, _ = workload
        tpca, ba_lin, _ = trained
        Z0 = tpca.encode(X)
        dec0 = LinearDecoder(L, X.shape[1]).fit_lstsq(Z0, X)
        eba_tpca = float(((X - dec0.decode(Z0)) ** 2).sum())
        assert ba_lin.e_ba(X) < eba_tpca

    def test_constraints_eventually_satisfied(self, workload):
        X, _, _ = workload
        ba = BinaryAutoencoder.linear(32, 8)
        trainer = MACTrainerBA(
            ba, GeometricSchedule(1e-2, 2.5, 16), w_epochs=2, seed=0
        )
        h = trainer.fit(X)
        assert h.records[-1].violations == 0


class TestRecallOrdering:
    def test_rbf_beats_tpca_at_small_R(self, workload, trained):
        X, Q, nn1 = workload
        tpca, _, ba_rbf = trained
        assert recall(X, Q, nn1, ba_rbf.encode, 10) > recall(X, Q, nn1, tpca.encode, 10)

    def test_rbf_beats_linear_at_small_R(self, workload, trained):
        # Fig. 11: "the nonlinear RBF hash function outperforms the linear
        # one in recall, as one would expect".
        X, Q, nn1 = workload
        _, ba_lin, ba_rbf = trained
        assert recall(X, Q, nn1, ba_rbf.encode, 10) >= recall(X, Q, nn1, ba_lin.encode, 10)

    def test_linear_at_least_matches_tpca_at_larger_R(self, workload, trained):
        X, Q, nn1 = workload
        tpca, ba_lin, _ = trained
        assert recall(X, Q, nn1, ba_lin.encode, 50) >= recall(X, Q, nn1, tpca.encode, 50)

    def test_recall_curves_monotone(self, workload, trained):
        X, Q, nn1 = workload
        _, ba_lin, _ = trained
        from repro.retrieval.metrics import recall_curve

        curve = recall_curve(
            pack_bits(ba_lin.encode(Q)), pack_bits(ba_lin.encode(X)), nn1,
            [1, 5, 10, 50, 100, 500],
        )
        assert (np.diff(curve) >= 0).all()


class TestEarlyStoppingGuarantee:
    def test_final_precision_is_best_seen(self, workload):
        X, Q, _ = workload
        ev = PrecisionEvaluator(Q, X, K=50, k=30)
        ba = BinaryAutoencoder.linear(32, 8)
        trainer = MACTrainerBA(
            ba, GeometricSchedule(1e-2, 2.0, 14), evaluator=ev,
            early_stopping=True, seed=0,
        )
        h = trainer.fit(X)
        final = ev(ba)["precision"]
        assert final >= max(r.precision for r in h.records) - 1e-12
