"""DEADLINE family: unbounded-wait fixtures (must-fire and must-not-fire)."""

import textwrap

from repro.analysis.core import SourceFile
from repro.analysis.deadline import check_deadline

PATH = "src/repro/serve/service.py"


def deadline(code, path=PATH):
    sf = SourceFile(path, textwrap.dedent(code))
    return [f for f in check_deadline(sf) if not sf.suppressed(f)]


class TestMustFire:
    def test_untimed_event_wait_fires(self):
        fs = deadline(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._done = threading.Event()

                def block(self):
                    self._done.wait()
            """
        )
        assert [f.rule for f in fs] == ["DEADLINE001"]

    def test_untimed_condition_wait_fires(self):
        # PR 10's exemplar: RetrievalService._gather's old final wait.
        fs = deadline(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._cond = threading.Condition()

                def gather(self):
                    with self._cond:
                        self._cond.wait()
            """
        )
        assert [f.rule for f in fs] == ["DEADLINE001"]

    def test_explicit_timeout_none_fires(self):
        fs = deadline(
            """
            import threading

            ev = threading.Event()
            ev.wait(timeout=None)
            """
        )
        assert [f.rule for f in fs] == ["DEADLINE001"]

    def test_wait_for_without_timeout_fires(self):
        fs = deadline(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._n = 0

                def gather(self):
                    with self._cond:
                        self._cond.wait_for(lambda: self._n > 0)
            """
        )
        assert [f.rule for f in fs] == ["DEADLINE001"]

    def test_unguarded_socket_recv_fires(self):
        fs = deadline(
            """
            import socket

            sock = socket.socket()
            data = sock.recv(4096)
            """
        )
        assert [f.rule for f in fs] == ["DEADLINE001"]

    def test_unguarded_accept_fires(self):
        fs = deadline(
            """
            import socket

            class Server:
                def __init__(self):
                    self._listener = socket.socket()

                def serve(self):
                    conn, addr = self._listener.accept()
            """
        )
        assert [f.rule for f in fs] == ["DEADLINE001"]

    def test_settimeout_none_is_no_guard(self):
        # settimeout(None) switches the socket *back* to blocking mode.
        fs = deadline(
            """
            import socket

            sock = socket.socket()
            sock.settimeout(None)
            data = sock.recv(4096)
            """
        )
        assert [f.rule for f in fs] == ["DEADLINE001"]


class TestMustNotFire:
    def test_timed_event_wait_clean(self):
        fs = deadline(
            """
            import threading

            ev = threading.Event()
            while not ev.wait(0.5):
                pass
            """
        )
        assert fs == []

    def test_timed_condition_wait_clean(self):
        fs = deadline(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._cond = threading.Condition()

                def gather(self):
                    with self._cond:
                        self._cond.wait(timeout=0.5)
            """
        )
        assert fs == []

    def test_wait_for_with_timeout_clean(self):
        fs = deadline(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._n = 0

                def gather(self):
                    with self._cond:
                        self._cond.wait_for(lambda: self._n > 0, 1.0)
            """
        )
        assert fs == []

    def test_guarded_socket_recv_clean(self):
        fs = deadline(
            """
            import socket

            sock = socket.socket()
            sock.settimeout(5.0)
            data = sock.recv(4096)
            """
        )
        assert fs == []

    def test_out_of_scope_module_clean(self):
        fs = deadline(
            """
            import threading

            ev = threading.Event()
            ev.wait()
            """,
            path="benchmarks/bench_query.py",
        )
        assert fs == []

    def test_noqa_suppresses(self):
        code = textwrap.dedent(
            """
            import threading

            ev = threading.Event()
            ev.wait()  # repro: noqa[DEADLINE001] joined by test harness
            """
        )
        sf = SourceFile(PATH, code)
        fs = check_deadline(sf)
        assert fs and all(sf.suppressed(f) for f in fs)
