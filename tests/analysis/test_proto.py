"""PROTO family: registry-consistency fixtures.

These rules key on file paths (framing.py, messages.py, backends/base.py),
so fixtures use the real relative paths with synthetic content."""

import textwrap

from repro.analysis.core import SourceFile
from repro.analysis.proto import check_proto


def sf(path, code):
    return SourceFile(path, textwrap.dedent(code))


COMPLETE_FRAMING = """
    KIND_HELLO = 0
    KIND_BATCH = 1
    _KNOWN_KINDS = (KIND_HELLO, KIND_BATCH)

    def encode_hello(rank):
        return b""

    def decode_hello(payload):
        return 0

    def encode_batch(messages):
        return b""

    def decode_batch(payload):
        return SubmodelMessage
"""


class TestFraming:
    def test_complete_codec_clean(self):
        fs = check_proto([sf("src/repro/distributed/framing.py", COMPLETE_FRAMING)])
        assert fs == []

    def test_missing_decoder_fires(self):
        code = """
            KIND_HELLO = 0
            _KNOWN_KINDS = (KIND_HELLO,)

            def encode_hello(rank):
                return b""
        """
        fs = check_proto([sf("src/repro/distributed/framing.py", code)])
        assert [f.rule for f in fs] == ["PROTO001"]
        assert "decode_hello" in fs[0].message

    def test_kind_missing_from_known_kinds_fires(self):
        code = """
            KIND_HELLO = 0
            KIND_BATCH = 1
            _KNOWN_KINDS = (KIND_HELLO,)

            def encode_hello(rank):
                return b""

            def decode_hello(payload):
                return 0

            def encode_batch(messages):
                return b""

            def decode_batch(payload):
                return []
        """
        fs = check_proto([sf("src/repro/distributed/framing.py", code)])
        assert [f.rule for f in fs] == ["PROTO001"]
        assert "_KNOWN_KINDS" in fs[0].message

    def test_exported_message_without_codec_fires(self):
        messages = sf(
            "src/repro/distributed/messages.py",
            '__all__ = ["SubmodelMessage", "OrphanMessage"]\n',
        )
        framing = sf("src/repro/distributed/framing.py", COMPLETE_FRAMING)
        fs = check_proto([framing, messages])
        assert [f.rule for f in fs] == ["PROTO002"]
        assert "OrphanMessage" in fs[0].message


BASE = """
    from typing import Protocol

    class Backend(Protocol):
        def setup(self, adapter, shards):
            ...

        def run_iteration(self, mu):
            ...

        def close(self):
            ...

    class BaseBackend:
        def setup(self, adapter, shards):
            raise NotImplementedError

        def run_iteration(self, mu):
            raise NotImplementedError

        def close(self):
            self._closed = True
"""


class TestBackendSurface:
    def test_full_surface_clean(self):
        impl = sf(
            "src/repro/distributed/backends/sim.py",
            """
            @register_backend("sim")
            class SimBackend(BaseBackend):
                def setup(self, adapter, shards):
                    self.adapter = adapter

                def run_iteration(self, mu):
                    return mu
            """,
        )
        fs = check_proto([sf("src/repro/distributed/backends/base.py", BASE), impl])
        assert fs == []

    def test_missing_override_fires(self):
        # run_iteration is only a NotImplementedError stub in the base.
        impl = sf(
            "src/repro/distributed/backends/sim.py",
            """
            @register_backend("sim")
            class SimBackend(BaseBackend):
                def setup(self, adapter, shards):
                    self.adapter = adapter
            """,
        )
        fs = check_proto([sf("src/repro/distributed/backends/base.py", BASE), impl])
        assert [f.rule for f in fs] == ["PROTO003"]
        assert "run_iteration" in fs[0].message

    def test_inherited_concrete_method_counts(self):
        # The method can come from anywhere in the static MRO.
        mid = sf(
            "src/repro/distributed/backends/mid.py",
            """
            class MidBackend(BaseBackend):
                def setup(self, adapter, shards):
                    self.adapter = adapter

                def run_iteration(self, mu):
                    return mu
            """,
        )
        leaf = sf(
            "src/repro/distributed/backends/leaf.py",
            """
            @register_backend("leaf")
            class LeafBackend(MidBackend):
                pass
            """,
        )
        fs = check_proto(
            [sf("src/repro/distributed/backends/base.py", BASE), mid, leaf]
        )
        assert fs == []

    def test_unregistered_abstract_class_not_flagged(self):
        # Abstract intermediates are fine; only registered leaves owe
        # the full surface.
        impl = sf(
            "src/repro/distributed/backends/sim.py",
            """
            class _HalfBackend(BaseBackend):
                def setup(self, adapter, shards):
                    self.adapter = adapter
            """,
        )
        fs = check_proto([sf("src/repro/distributed/backends/base.py", BASE), impl])
        assert fs == []


class TestRealTree:
    def test_repo_registries_consistent(self):
        # The real framing/messages/backends must satisfy PROTO today.
        from pathlib import Path

        from repro.analysis.core import collect_files

        tree = Path(__file__).resolve().parents[2] / "src" / "repro" / "distributed"
        files = collect_files([tree])
        assert [f for f in check_proto(files) if f.rule.startswith("PROTO")] == []
