"""Tier-1 invariant: src/ stays clean under repro.analysis.

This is the PROTO-hardening satellite — the lint contract travels with
every future PR via the test suite itself, not only via the CI lint
lane. Any new finding must be fixed or carry an inline
``# repro: noqa[RULE]`` with a justification; the committed baseline is
expected to stay empty.
"""

import json
from pathlib import Path

from repro.analysis.core import run_check
from repro.analysis.report import Baseline, render_text

REPO = Path(__file__).resolve().parents[2]


def test_src_has_no_unsuppressed_findings():
    result = run_check([REPO / "src"], root=REPO)
    baseline = Baseline.load(REPO / ".repro-analysis-baseline.json")
    new, _ = baseline.diff(result.findings)
    assert new == [], "\n" + render_text(new)


def test_committed_baseline_is_empty():
    # The baseline exists for landing future rules, not for parking
    # violations; this PR ships with every finding actually fixed.
    path = REPO / ".repro-analysis-baseline.json"
    doc = json.loads(path.read_text())
    assert doc["findings"] == []
