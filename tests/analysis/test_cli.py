"""CLI surface: exit codes, baseline workflow, select/ignore, formats."""

import json
import textwrap

import pytest

from repro.analysis.cli import main

DIRTY = textwrap.dedent(
    """
    import numpy as np
    x = np.random.rand(3)
    """
)

CLEAN = textwrap.dedent(
    """
    import numpy as np
    rng = np.random.default_rng(0)
    x = rng.random(3)
    """
)


@pytest.fixture
def tree(tmp_path):
    # The DET scope keys on the module path, so the fixture recreates it.
    mod = tmp_path / "repro" / "distributed"
    mod.mkdir(parents=True)
    (mod / "protocol.py").write_text(DIRTY)
    return tmp_path


def test_clean_tree_exits_zero(tmp_path, capsys):
    mod = tmp_path / "repro" / "distributed"
    mod.mkdir(parents=True)
    (mod / "protocol.py").write_text(CLEAN)
    assert main(["check", str(tmp_path)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one(tree, capsys):
    assert main(["check", str(tree)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_json_format(tree, capsys):
    assert main(["check", str(tree), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"][0]["rule"] == "DET001"


def test_select_and_ignore(tree):
    assert main(["check", str(tree), "--select", "DTYPE"]) == 0
    assert main(["check", str(tree), "--ignore", "DET"]) == 0
    assert main(["check", str(tree), "--select", "DET001"]) == 1


def test_baseline_workflow(tree, capsys):
    baseline = tree / "baseline.json"
    # Accept today's findings into the baseline...
    assert main(
        ["check", str(tree), "--baseline", str(baseline), "--update-baseline"]
    ) == 0
    capsys.readouterr()
    # ...so the same tree now passes...
    assert main(["check", str(tree), "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # ...a NEW violation still fails...
    (tree / "repro" / "distributed" / "batching.py").write_text(DIRTY)
    assert main(["check", str(tree), "--baseline", str(baseline)]) == 1
    capsys.readouterr()
    # ...and fixing the baselined file reports the entry as stale.
    (tree / "repro" / "distributed" / "batching.py").unlink()
    (tree / "repro" / "distributed" / "protocol.py").write_text(CLEAN)
    assert main(["check", str(tree), "--baseline", str(baseline)]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_update_baseline_requires_baseline(tree, capsys):
    assert main(["check", str(tree), "--update-baseline"]) == 2


def test_rules_listing(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for family in ("DET", "DTYPE", "LOCK", "RES", "PROTO"):
        assert family in out
