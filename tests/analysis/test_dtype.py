"""DTYPE family: must-fire and must-not-fire fixtures."""

import textwrap

from repro.analysis.core import SourceFile
from repro.analysis.dtype import check_dtype

IN_SCOPE = "src/repro/optim/sgd.py"


def dtype(code, path=IN_SCOPE):
    sf = SourceFile(path, textwrap.dedent(code))
    return [f for f in check_dtype(sf) if not sf.suppressed(f)]


def rules(findings):
    return sorted({f.rule for f in findings})


class TestConstructors:
    def test_zeros_without_dtype_fires(self):
        fs = dtype("import numpy as np\nx = np.zeros(10)\n")
        assert rules(fs) == ["DTYPE001"]

    def test_arange_without_dtype_fires(self):
        fs = dtype("import numpy as np\nx = np.arange(4)\n")
        assert rules(fs) == ["DTYPE001"]

    def test_array_of_literal_fires(self):
        fs = dtype("import numpy as np\nx = np.array([1.0, 2.0])\n")
        assert rules(fs) == ["DTYPE001"]

    def test_dtype_keyword_clean(self):
        fs = dtype("import numpy as np\nx = np.zeros(10, dtype=np.float32)\n")
        assert fs == []

    def test_positional_dtype_clean(self):
        fs = dtype("import numpy as np\nx = np.empty((4, 0), np.int64)\n")
        assert fs == []

    def test_immediate_astype_clean(self):
        fs = dtype("import numpy as np\nx = np.array([1.0, 2.0]).astype('f4')\n")
        assert fs == []

    def test_array_of_existing_array_clean(self):
        # np.array(arr) preserves arr's dtype — nothing to state.
        fs = dtype(
            """
            import numpy as np
            a = np.zeros(3, dtype=np.float32)
            b = np.array(a)
            """
        )
        assert fs == []

    def test_out_of_scope_module_clean(self):
        fs = dtype(
            "import numpy as np\nx = np.zeros(10)\n",
            path="src/repro/distributed/cluster.py",
        )
        assert fs == []

    def test_noqa_suppresses(self):
        sf = SourceFile(
            IN_SCOPE,
            "import numpy as np\n"
            "x = np.zeros(3)  # repro: noqa[DTYPE001] scratch buffer\n",
        )
        fs = check_dtype(sf)
        assert fs and all(sf.suppressed(f) for f in fs)


class TestUpcast:
    def test_float64_scalar_arithmetic_fires(self):
        fs = dtype(
            """
            import numpy as np
            a = np.zeros(3, dtype=np.float32)
            b = a * np.float64(0.5)
            """
        )
        assert rules(fs) == ["DTYPE002"]

    def test_same_dtype_scalar_clean(self):
        fs = dtype(
            """
            import numpy as np
            a = np.zeros(3, dtype=np.float32)
            b = a * np.float32(0.5)
            """
        )
        assert fs == []
