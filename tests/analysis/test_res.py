"""RES family: acquisition/release path fixtures."""

import textwrap

from repro.analysis.core import SourceFile
from repro.analysis.res import check_res

PATH = "src/repro/distributed/backends/mp.py"


def res(code, path=PATH):
    sf = SourceFile(path, textwrap.dedent(code))
    return [f for f in check_res(sf) if not sf.suppressed(f)]


class TestShm:
    def test_fallible_window_before_return_fires(self):
        # _pack_array_block's original shape: segment exists in /dev/shm,
        # numpy copies can raise, nothing unlinks on that path.
        fs = res(
            """
            import numpy as np
            from multiprocessing import shared_memory

            def pack(arrays):
                seg = shared_memory.SharedMemory(create=True, size=64)
                views = [np.ndarray(a.shape, buffer=seg.buf) for a in arrays]
                return seg, views
            """
        )
        assert [f.rule for f in fs] == ["RES001"]

    def test_never_released_fires(self):
        fs = res(
            """
            from multiprocessing import shared_memory

            def make():
                seg = shared_memory.SharedMemory(create=True, size=64)
                print(seg.name)
            """
        )
        assert [f.rule for f in fs] == ["RES001"]

    def test_guarded_by_try_except_clean(self):
        fs = res(
            """
            import numpy as np
            from multiprocessing import shared_memory

            def pack(arrays):
                seg = shared_memory.SharedMemory(create=True, size=64)
                try:
                    views = [np.ndarray(a.shape, buffer=seg.buf) for a in arrays]
                except Exception:
                    seg.close()
                    seg.unlink()
                    raise
                return seg, views
            """
        )
        assert fs == []

    def test_immediate_container_transfer_clean(self):
        # _pack_shards' shape: appended before anything can fail; the
        # caller's cleanup owns the list.
        fs = res(
            """
            from multiprocessing import shared_memory

            def pack_all(sizes, segments):
                for n in sizes:
                    seg = shared_memory.SharedMemory(create=True, size=n)
                    segments.append(seg)
            """
        )
        assert fs == []

    def test_attach_not_flagged(self):
        # create=False borrows; the unlink obligation stays with the creator.
        fs = res(
            """
            from multiprocessing import shared_memory

            def attach(name):
                seg = shared_memory.SharedMemory(name=name)
                return seg
            """
        )
        assert fs == []


class TestSockets:
    def test_fallible_window_before_return_fires(self):
        fs = res(
            """
            import socket

            def bind(host, port):
                listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                listen.bind((host, port))
                listen.listen(16)
                return listen
            """
        )
        assert [f.rule for f in fs] == ["RES001"]

    def test_immediate_return_clean(self):
        fs = res(
            """
            import socket

            def connect(addr):
                return socket.create_connection(addr, timeout=5.0)
            """
        )
        assert fs == []

    def test_with_block_clean(self):
        fs = res(
            """
            import socket

            def probe(addr):
                with socket.create_connection(addr) as s:
                    s.sendall(b"ping")
            """
        )
        assert fs == []


class TestFiles:
    def test_open_never_closed_fires(self):
        fs = res(
            """
            def read(path):
                f = open(path)
                data = f.read()
            """
        )
        assert [f.rule for f in fs] == ["RES001"]

    def test_open_with_clean(self):
        fs = res(
            """
            def read(path):
                with open(path) as f:
                    return f.read()
            """
        )
        assert fs == []

    def test_noqa_suppresses(self):
        code = textwrap.dedent(
            """
            def read(path):
                f = open(path)  # repro: noqa[RES001] lifetime is the process
                data = f.read()
            """
        )
        sf = SourceFile(PATH, code)
        fs = check_res(sf)
        assert fs and all(sf.suppressed(f) for f in fs)
