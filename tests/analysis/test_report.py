"""Reporter round-trips and baseline diffing, property-tested."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.core import Finding
from repro.analysis.report import Baseline, parse_json, render_json, render_text

_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r\n"),
    max_size=40,
)

findings = st.builds(
    Finding,
    rule=st.sampled_from(
        ["DET001", "DET002", "DTYPE001", "LOCK001", "RES001", "PROTO001"]
    ),
    severity=st.sampled_from(["error", "warning"]),
    path=_text.map(lambda s: f"src/{s}.py"),
    line=st.integers(min_value=1, max_value=10_000),
    col=st.integers(min_value=1, max_value=500),
    message=_text,
    context=_text,
)


class TestJsonRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(fs=st.lists(findings, max_size=10), suppressed=st.integers(0, 50))
    def test_render_parse_identity(self, fs, suppressed):
        parsed, parsed_suppressed, stale = parse_json(
            render_json(fs, suppressed=suppressed)
        )
        assert parsed == fs
        assert parsed_suppressed == suppressed
        assert stale == []

    @settings(max_examples=50, deadline=None)
    @given(fs=st.lists(findings, max_size=6), stale=st.lists(findings, max_size=4))
    def test_stale_entries_round_trip(self, fs, stale):
        parsed, _, parsed_stale = parse_json(render_json(fs, stale=stale))
        assert parsed == fs
        assert parsed_stale == stale

    @settings(max_examples=50, deadline=None)
    @given(fs=st.lists(findings, max_size=6))
    def test_output_is_valid_json(self, fs):
        json.loads(render_json(fs))


class TestBaselineDiff:
    @settings(max_examples=200, deadline=None)
    @given(fs=st.lists(findings, max_size=10))
    def test_self_baseline_accepts_everything(self, fs):
        new, stale = Baseline(entries=list(fs)).diff(fs)
        assert new == []
        assert stale == []

    @settings(max_examples=100, deadline=None)
    @given(fs=st.lists(findings, max_size=8), extra=findings)
    def test_unbaselined_finding_is_new(self, fs, extra):
        new, _ = Baseline(entries=list(fs)).diff(fs + [extra])
        # The baseline's multiset budget for extra.key is exhausted by
        # matching occurrences already inside fs, so exactly one of the
        # extra.key findings surfaces as new.
        assert [f.key for f in new] == [extra.key]

    @settings(max_examples=100, deadline=None)
    @given(fs=st.lists(findings, min_size=1, max_size=8))
    def test_fixed_finding_goes_stale(self, fs):
        new, stale = Baseline(entries=list(fs)).diff(fs[1:])
        assert new == []
        assert [e.key for e in stale] == [fs[0].key]

    @settings(max_examples=100, deadline=None)
    @given(f=findings)
    def test_multiset_semantics(self, f):
        # Two identical findings need two baseline entries.
        new, stale = Baseline(entries=[f]).diff([f, f])
        assert len(new) == 1
        assert stale == []

    @settings(max_examples=50, deadline=None)
    @given(fs=st.lists(findings, max_size=8))
    def test_save_load_round_trip(self, fs, tmp_path_factory):
        p = tmp_path_factory.mktemp("baseline") / "b.json"
        Baseline(entries=list(fs)).save(p)
        loaded = Baseline.load(p)
        assert sorted(e.key for e in loaded.entries) == sorted(e.key for e in fs)

    def test_missing_file_is_empty(self, tmp_path):
        b = Baseline.load(tmp_path / "nope.json")
        assert b.entries == []


class TestTextRenderer:
    def test_mentions_location_rule_and_summary(self):
        f = Finding("DET001", "error", "src/x.py", 3, 7, "bad rng", "np.random.rand()")
        out = render_text([f], suppressed=2)
        assert "src/x.py:3:7" in out
        assert "DET001" in out
        assert "np.random.rand()" in out
        assert "1 finding" in out
        assert "2 suppressed" in out

    def test_stale_entries_reported(self):
        e = Finding("RES001", "error", "src/y.py", 1, 1, "leak", "ctx")
        out = render_text([], stale=[e])
        assert "stale baseline entry" in out
