"""LOCK family: blocking-under-lock and lock-order-inversion fixtures."""

import textwrap

from repro.analysis.core import SourceFile
from repro.analysis.locks import check_lock_blocking, check_lock_inversions

PATH = "src/repro/serve/service.py"


def blocking(code, path=PATH):
    sf = SourceFile(path, textwrap.dedent(code))
    return [f for f in check_lock_blocking(sf) if not sf.suppressed(f)]


class TestBlockingUnderLock:
    def test_queue_get_under_lock_fires(self):
        # PR 4's shm feeder wedge in miniature.
        fs = blocking(
            """
            import queue
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._q = queue.Queue()

                def drain(self):
                    with self._lock:
                        return self._q.get()
            """
        )
        assert [f.rule for f in fs] == ["LOCK001"]

    def test_socket_sendall_under_lock_fires(self):
        fs = blocking(
            """
            import socket
            import threading

            lock = threading.Lock()
            sock = socket.socket()
            with lock:
                sock.sendall(b"x")
            """
        )
        assert [f.rule for f in fs] == ["LOCK001"]

    def test_sleep_under_lock_fires(self):
        fs = blocking(
            """
            import threading
            import time

            lock = threading.Lock()
            with lock:
                time.sleep(1.0)
            """
        )
        assert [f.rule for f in fs] == ["LOCK001"]

    def test_thread_join_under_lock_fires(self):
        fs = blocking(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._worker = threading.Thread(target=print)

                def stop(self):
                    with self._lock:
                        self._worker.join()
            """
        )
        assert [f.rule for f in fs] == ["LOCK001"]

    def test_condition_wait_on_held_condition_clean(self):
        # The blessed pattern: wait() releases the held condition.
        fs = blocking(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._cond = threading.Condition()

                def wait_for_work(self):
                    with self._cond:
                        self._cond.wait(timeout=1.0)
            """
        )
        assert fs == []

    def test_blocking_call_outside_lock_clean(self):
        fs = blocking(
            """
            import queue
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._q = queue.Queue()

                def drain(self):
                    with self._lock:
                        n = 1
                    return self._q.get()
            """
        )
        assert fs == []

    def test_nested_def_not_under_lock(self):
        # A callback defined under the lock runs later, lock released.
        fs = blocking(
            """
            import queue
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._q = queue.Queue()

                def make_cb(self):
                    with self._lock:
                        def cb():
                            return self._q.get()
                    return cb
            """
        )
        assert fs == []

    def test_noqa_suppresses(self):
        code = textwrap.dedent(
            """
            import threading
            import time

            lock = threading.Lock()
            with lock:
                time.sleep(0.1)  # repro: noqa[LOCK001] bounded test pause
            """
        )
        sf = SourceFile(PATH, code)
        fs = check_lock_blocking(sf)
        assert fs and all(sf.suppressed(f) for f in fs)


class TestInversions:
    def test_opposite_nesting_fires(self):
        sf = SourceFile(
            PATH,
            textwrap.dedent(
                """
                import threading

                class Svc:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def one(self):
                        with self._a:
                            with self._b:
                                pass

                    def two(self):
                        with self._b:
                            with self._a:
                                pass
                """
            ),
        )
        fs = check_lock_inversions([sf])
        assert [f.rule for f in fs] == ["LOCK002"]

    def test_consistent_order_clean(self):
        sf = SourceFile(
            PATH,
            textwrap.dedent(
                """
                import threading

                class Svc:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def one(self):
                        with self._a:
                            with self._b:
                                pass

                    def two(self):
                        with self._a:
                            with self._b:
                                pass
                """
            ),
        )
        assert check_lock_inversions([sf]) == []

    def test_inversion_across_files_fires(self):
        # The graph is global: each file alone is consistent.
        one = SourceFile(
            "src/repro/a.py",
            textwrap.dedent(
                """
                import threading

                class Svc:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def one(self):
                        with self._a:
                            with self._b:
                                pass
                """
            ),
        )
        two = SourceFile(
            "src/repro/b.py",
            textwrap.dedent(
                """
                import threading

                class Svc:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def two(self):
                        with self._b:
                            with self._a:
                                pass
                """
            ),
        )
        fs = check_lock_inversions([one, two])
        assert [f.rule for f in fs] == ["LOCK002"]
