"""DET family: must-fire and must-not-fire fixtures.

Fixture paths matter: DET only applies to protocol-deterministic
modules, so firing fixtures use ``distributed/protocol.py``-style paths
and the out-of-scope fixture proves the scoping."""

import textwrap

from repro.analysis.core import SourceFile
from repro.analysis.det import check_det

IN_SCOPE = "src/repro/distributed/protocol.py"


def det(code, path=IN_SCOPE):
    sf = SourceFile(path, textwrap.dedent(code))
    return [f for f in check_det(sf) if not sf.suppressed(f)]


def rules(findings):
    return sorted({f.rule for f in findings})


class TestGlobalRng:
    def test_np_random_module_call_fires(self):
        fs = det("import numpy as np\nx = np.random.rand(3)\n")
        assert rules(fs) == ["DET001"]

    def test_alias_still_fires(self):
        # The satellite-spec case: aliasing the module must not launder it.
        fs = det(
            """
            import numpy as np
            rng = np.random
            x = rng.rand(3)
            """
        )
        assert "DET001" in rules(fs)

    def test_from_import_alias_fires(self):
        fs = det(
            """
            from numpy.random import shuffle
            shuffle([1, 2, 3])
            """
        )
        assert rules(fs) == ["DET001"]

    def test_stdlib_random_fires(self):
        fs = det("import random\nrandom.shuffle([1])\n")
        assert rules(fs) == ["DET001"]

    def test_seeded_generator_clean(self):
        fs = det(
            """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.random(3)
            y = rng.shuffle([1, 2])
            """
        )
        assert fs == []

    def test_out_of_scope_module_clean(self):
        fs = det(
            "import numpy as np\nx = np.random.rand(3)\n",
            path="benchmarks/bench_something.py",
        )
        assert fs == []

    def test_noqa_suppresses(self):
        sf = SourceFile(
            IN_SCOPE,
            "import numpy as np\n"
            "x = np.random.rand(3)  # repro: noqa[DET001] test-only jitter\n",
        )
        fs = check_det(sf)
        assert fs and all(sf.suppressed(f) for f in fs)

    def test_blanket_noqa_suppresses(self):
        sf = SourceFile(
            IN_SCOPE,
            "import numpy as np\nx = np.random.rand(3)  # repro: noqa\n",
        )
        fs = check_det(sf)
        assert fs and all(sf.suppressed(f) for f in fs)

    def test_noqa_for_other_rule_does_not_suppress(self):
        sf = SourceFile(
            IN_SCOPE,
            "import numpy as np\nx = np.random.rand(3)  # repro: noqa[DTYPE001]\n",
        )
        fs = check_det(sf)
        assert fs and not any(sf.suppressed(f) for f in fs)


class TestWallClock:
    def test_call_fires(self):
        fs = det("import time\nt = time.perf_counter()\n")
        assert rules(fs) == ["DET002"]

    def test_default_argument_reference_fires(self):
        # The chaos.py bug this rule was written for: no call at import
        # time, but the wall-clock dependency is baked into the default.
        fs = det(
            """
            import time

            def f(clock=time.monotonic):
                return clock
            """
        )
        assert "DET002" in rules(fs)

    def test_datetime_now_fires(self):
        fs = det("import datetime\nt = datetime.datetime.now()\n")
        assert rules(fs) == ["DET002"]

    def test_injected_clock_clean(self):
        fs = det(
            """
            class Shim:
                def __init__(self, *, clock):
                    self._clock = clock
                    self._t0 = clock()
            """
        )
        assert fs == []


class TestEntropy:
    def test_unseeded_seedsequence_fires(self):
        fs = det("import numpy as np\ns = np.random.SeedSequence()\n")
        assert rules(fs) == ["DET003"]

    def test_seeded_seedsequence_clean(self):
        fs = det("import numpy as np\ns = np.random.SeedSequence(42)\n")
        assert fs == []


class TestSetIteration:
    def test_for_over_set_literal_fires(self):
        fs = det("for x in {3, 1, 2}:\n    pass\n")
        assert rules(fs) == ["DET004"]

    def test_comprehension_over_set_call_fires(self):
        fs = det("xs = [x for x in set([3, 1])]\n")
        assert rules(fs) == ["DET004"]

    def test_sorted_set_clean(self):
        fs = det("for x in sorted({3, 1, 2}):\n    pass\n")
        assert fs == []

    def test_list_iteration_clean(self):
        fs = det("for x in [3, 1, 2]:\n    pass\n")
        assert fs == []
