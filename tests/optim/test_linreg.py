import numpy as np
import pytest

from repro.optim.linreg import LinearRegression, squared_loss
from repro.optim.schedules import InverseSchedule
from repro.optim.sgd import SGDState


def linear_problem(n=150, d_in=4, d_out=3, noise=0.01, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d_in))
    W = rng.normal(size=(d_out, d_in))
    c = rng.normal(size=d_out)
    Y = X @ W.T + c + noise * rng.normal(size=(n, d_out))
    return X, Y, W, c


class TestSquaredLoss:
    def test_zero_on_equal(self):
        A = np.ones((3, 2))
        assert squared_loss(A, A) == 0.0

    def test_mean_over_rows(self):
        pred = np.array([[1.0, 0.0], [0.0, 0.0]])
        target = np.zeros((2, 2))
        assert squared_loss(pred, target) == pytest.approx(0.5)


class TestLstsq:
    def test_recovers_true_map(self):
        X, Y, W, c = linear_problem(noise=0.0)
        reg = LinearRegression(4, 3).fit_lstsq(X, Y)
        assert np.allclose(reg.W, W, atol=1e-8)
        assert np.allclose(reg.c, c, atol=1e-8)

    def test_matches_numpy_lstsq(self):
        X, Y, _, _ = linear_problem(noise=0.5)
        reg = LinearRegression(4, 3).fit_lstsq(X, Y)
        A = np.hstack([X, np.ones((len(X), 1))])
        theta, *_ = np.linalg.lstsq(A, Y, rcond=None)
        assert np.allclose(reg.W, theta[:-1].T, atol=1e-8)

    def test_regularised_solution_shrinks(self):
        X, Y, _, _ = linear_problem(noise=0.5)
        plain = LinearRegression(4, 3).fit_lstsq(X, Y)
        ridge = LinearRegression(4, 3, lam=10.0).fit_lstsq(X, Y)
        assert np.linalg.norm(ridge.W) < np.linalg.norm(plain.W)

    def test_regularised_gradient_stationarity(self):
        # The solution must zero the gradient of the regularised objective.
        X, Y, _, _ = linear_problem(noise=0.5)
        lam = 0.3
        reg = LinearRegression(4, 3, lam=lam).fit_lstsq(X, Y)
        n = len(X)
        resid = X @ reg.W.T + reg.c - Y
        grad_W = (2.0 / n) * resid.T @ X + 2.0 * lam * reg.W
        grad_c = (2.0 / n) * resid.sum(axis=0)
        assert np.allclose(grad_W, 0.0, atol=1e-8)
        assert np.allclose(grad_c, 0.0, atol=1e-8)

    def test_intercept_not_regularised(self):
        X, Y, _, c = linear_problem(noise=0.0, seed=3)
        ridge = LinearRegression(4, 3, lam=100.0).fit_lstsq(X, Y)
        # Weights crushed, intercept moves to the target mean.
        assert np.allclose(ridge.c, Y.mean(axis=0), atol=0.5)

    def test_1d_target_accepted(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = X[:, 0] * 2.0 + 1.0
        reg = LinearRegression(2, 1).fit_lstsq(X, y)
        assert reg.W.shape == (1, 2)
        assert reg.predict(X)[:, 0] == pytest.approx(y, abs=1e-8)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LinearRegression(2, 1).fit_lstsq(np.zeros((0, 2)), np.zeros((0, 1)))


class TestSGDFit:
    def test_approaches_exact_solution(self):
        X, Y, _, _ = linear_problem(noise=0.05)
        exact = LinearRegression(4, 3).fit_lstsq(X, Y)
        sgd = LinearRegression(4, 3, schedule=InverseSchedule(eta0=0.1, t0=50.0))
        sgd.fit_sgd(X, Y, epochs=100, batch_size=16, rng=0)
        assert sgd.objective(X, Y) <= exact.objective(X, Y) * 1.2 + 1e-6

    def test_partial_fit_state(self):
        X, Y, _, _ = linear_problem(n=40)
        reg = LinearRegression(4, 3)
        state = SGDState()
        reg.partial_fit(X, Y, state, batch_size=10)
        assert state.t == 4

    def test_objective_decreases_from_zero_init(self):
        X, Y, _, _ = linear_problem()
        reg = LinearRegression(4, 3)
        before = reg.objective(X, Y)
        reg.fit_sgd(X, Y, epochs=5, rng=0)
        assert reg.objective(X, Y) < before

    def test_params_roundtrip(self):
        reg = LinearRegression(3, 2)
        theta = np.arange(8, dtype=float)
        reg.set_params(theta)
        assert np.array_equal(reg.get_params(), theta)
        assert reg.W.shape == (2, 3)

    def test_set_params_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            LinearRegression(3, 2).set_params(np.zeros(7))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearRegression(2, 1).partial_fit(
                np.zeros((3, 2)), np.zeros((2, 1)), SGDState()
            )
