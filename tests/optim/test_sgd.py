import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.optim.sgd import SGDState, minibatch_indices, sgd_epoch


class TestSGDState:
    def test_advance(self):
        s = SGDState()
        s.advance(10)
        s.advance(5)
        assert s.t == 2 and s.n_updates == 15

    def test_copy_independent(self):
        s = SGDState(t=3, n_updates=30)
        c = s.copy()
        c.advance(1)
        assert s.t == 3 and c.t == 4


class TestMinibatchIndices:
    @given(st.integers(0, 200), st.integers(1, 50))
    def test_partition_covers_exactly_once(self, n, bs):
        batches = list(minibatch_indices(n, bs, shuffle=True, rng=0))
        flat = np.concatenate(batches) if batches else np.array([], dtype=int)
        assert sorted(flat.tolist()) == list(range(n))

    @given(st.integers(1, 200), st.integers(1, 50))
    def test_batch_sizes(self, n, bs):
        batches = list(minibatch_indices(n, bs, shuffle=False))
        assert all(len(b) == bs for b in batches[:-1])
        assert 1 <= len(batches[-1]) <= bs

    def test_no_shuffle_is_ordered(self):
        batches = list(minibatch_indices(10, 4, shuffle=False))
        assert np.array_equal(np.concatenate(batches), np.arange(10))

    def test_shuffle_reproducible(self):
        a = list(minibatch_indices(50, 8, shuffle=True, rng=3))
        b = list(minibatch_indices(50, 8, shuffle=True, rng=3))
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            minibatch_indices(-1, 4)
        with pytest.raises(ValueError):
            minibatch_indices(10, 0)

    def test_batches_are_lazy(self):
        # The epoch is a generator: nothing (beyond validation) happens at
        # call time, and batches materialise one at a time.
        import types

        gen = minibatch_indices(10**9, 64, shuffle=False)
        assert isinstance(gen, types.GeneratorType)
        first = next(gen)
        assert np.array_equal(first, np.arange(64))
        assert len(next(gen)) == 64

    def test_shuffle_order_drawn_once_before_first_batch(self):
        # The permutation must come off the RNG exactly once, at first
        # consumption — so interleaved RNG use after the first batch does
        # not perturb the epoch's draw order.
        rng = np.random.default_rng(3)
        expect = np.arange(50)
        np.random.default_rng(3).shuffle(expect)  # same stream, eager
        gen = minibatch_indices(50, 8, shuffle=True, rng=rng)
        got = [next(gen)]
        rng.integers(0, 10, size=5)  # unrelated draw mid-epoch
        got.extend(gen)
        assert np.array_equal(np.concatenate(got), expect)

    def test_validation_is_eager(self):
        # Bad arguments fail at the call site, not at first next().
        with pytest.raises(ValueError):
            minibatch_indices(10, -3, shuffle=False)


class TestSgdEpoch:
    def test_calls_update_with_increasing_t(self):
        seen = []
        state = SGDState(t=7)
        sgd_epoch(lambda idx, t: seen.append(t), 10, state, batch_size=3, shuffle=False)
        assert seen == [7, 8, 9, 10]
        assert state.t == 11 and state.n_updates == 10

    def test_state_persists_across_epochs(self):
        # The travelling-submodel property: counters continue across visits.
        state = SGDState()
        for _ in range(3):
            sgd_epoch(lambda idx, t: None, 8, state, batch_size=4)
        assert state.t == 6 and state.n_updates == 24

    def test_empty_shard_is_noop(self):
        state = SGDState(t=5)
        sgd_epoch(lambda idx, t: 1 / 0, 0, state, batch_size=4)
        assert state.t == 5
