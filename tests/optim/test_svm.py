import numpy as np
import pytest
from scipy.optimize import minimize

from repro.optim.schedules import BottouSchedule
from repro.optim.sgd import SGDState
from repro.optim.svm import LinearSVM, hinge_loss, svm_objective


def separable_problem(n=200, d=5, margin=1.0, seed=0):
    rng = np.random.default_rng(seed)
    w_true = rng.normal(size=d)
    w_true /= np.linalg.norm(w_true)
    X = rng.normal(size=(n, d))
    y = np.where(X @ w_true >= 0, 1.0, -1.0)
    X += margin * y[:, None] * w_true  # push classes apart
    return X, y


class TestHingeLoss:
    def test_zero_when_margin_met(self):
        assert hinge_loss(np.array([2.0, -3.0]), np.array([1.0, -1.0])) == 0.0

    def test_linear_penalty(self):
        # score 0 with label +1 -> hinge 1.
        assert hinge_loss(np.array([0.0]), np.array([1.0])) == 1.0

    def test_objective_includes_regulariser(self):
        w = np.array([2.0, 0.0])
        X = np.array([[1.0, 0.0]])
        y = np.array([1.0])
        assert svm_objective(w, 0.0, X, y, lam=0.5) == pytest.approx(0.5 * 0.5 * 4.0)


class TestLinearSVM:
    def test_separable_data_classified(self):
        X, y = separable_problem()
        svm = LinearSVM(5, lam=1e-4).fit(X, y, epochs=20, rng=0)
        assert (svm.predict(X) == y).mean() > 0.97

    def test_objective_decreases(self):
        X, y = separable_problem(margin=0.5)
        svm = LinearSVM(5, lam=1e-3)
        before = svm.objective(X, y)
        svm.fit(X, y, epochs=10, rng=0)
        assert svm.objective(X, y) < before

    def test_matches_scipy_on_tiny_problem(self):
        # SGD should approach the scipy-found minimum of the same objective.
        X, y = separable_problem(n=60, d=3, margin=0.3, seed=1)
        lam = 0.1  # strong convexity helps both solvers

        def obj(theta):
            return svm_objective(theta[:-1], theta[-1], X, y, lam)

        ref = min(
            minimize(obj, np.zeros(4), method="Nelder-Mead",
                     options={"maxiter": 5000, "xatol": 1e-8, "fatol": 1e-10}).fun
            for _ in range(1)
        )
        svm = LinearSVM(3, lam=lam).fit(X, y, epochs=300, batch_size=8, rng=0)
        assert svm.objective(X, y) <= ref * 1.10 + 1e-6

    def test_partial_fit_continues_state(self):
        X, y = separable_problem()
        svm = LinearSVM(5)
        state = SGDState()
        svm.partial_fit(X, y, state, batch_size=50)
        assert state.t == 4 and state.n_updates == 200
        svm.partial_fit(X, y, state, batch_size=50)
        assert state.t == 8

    def test_rejects_bad_labels(self):
        svm = LinearSVM(2)
        with pytest.raises(ValueError, match="-1/\\+1"):
            svm.partial_fit(np.zeros((3, 2)), np.array([0, 1, 2]), SGDState())

    def test_rejects_length_mismatch(self):
        svm = LinearSVM(2)
        with pytest.raises(ValueError, match="rows"):
            svm.partial_fit(np.zeros((3, 2)), np.array([1.0, -1.0]), SGDState())

    def test_params_roundtrip(self):
        svm = LinearSVM(4)
        theta = np.arange(5, dtype=float)
        svm.set_params(theta)
        assert np.array_equal(svm.get_params(), theta)
        assert svm.b == 4.0

    def test_set_params_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            LinearSVM(4).set_params(np.zeros(3))

    def test_predict_tie_maps_to_plus_one(self):
        # Matches the BA step convention step(0) = 1.
        svm = LinearSVM(2)
        assert svm.predict(np.zeros((1, 2)))[0] == 1

    def test_deterministic_given_seed(self):
        X, y = separable_problem()
        a = LinearSVM(5).fit(X, y, epochs=3, rng=42)
        b = LinearSVM(5).fit(X, y, epochs=3, rng=42)
        assert np.array_equal(a.w, b.w) and a.b == b.b

    def test_regularisation_shrinks_weights(self):
        X, y = separable_problem(margin=2.0)
        small = LinearSVM(5, lam=1e-5).fit(X, y, epochs=20, rng=0)
        big = LinearSVM(5, lam=1.0, schedule=BottouSchedule(lam=1.0)).fit(
            X, y, epochs=20, rng=0
        )
        assert np.linalg.norm(big.w) < np.linalg.norm(small.w)
