import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.optim.schedules import (
    BottouSchedule,
    ConstantSchedule,
    InverseSchedule,
    is_robbins_monro,
    tune_eta0,
)


class TestConstant:
    def test_rate_constant(self):
        s = ConstantSchedule(0.3)
        assert s.rate(0) == s.rate(1000) == 0.3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)

    def test_not_robbins_monro(self):
        assert not is_robbins_monro(ConstantSchedule(0.1))


class TestBottou:
    def test_initial_rate(self):
        assert BottouSchedule(eta0=0.5, lam=1e-3).rate(0) == 0.5

    def test_formula(self):
        s = BottouSchedule(eta0=0.5, lam=0.01)
        t = 37
        assert s.rate(t) == pytest.approx(0.5 / (1 + 0.01 * 0.5 * t))

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_monotone_decreasing(self, t1, t2):
        s = BottouSchedule(eta0=0.2, lam=1e-3)
        lo, hi = min(t1, t2), max(t1, t2)
        assert s.rate(hi) <= s.rate(lo)

    def test_is_robbins_monro(self):
        assert is_robbins_monro(BottouSchedule())

    def test_asymptotics_one_over_lambda_t(self):
        # For large t, eta_t ~ 1/(lam t): the optimal strongly convex rate.
        s = BottouSchedule(eta0=1.0, lam=0.1)
        t = 10**7
        assert s.rate(t) == pytest.approx(1.0 / (0.1 * t), rel=1e-4)


class TestInverse:
    def test_power_one_is_rm(self):
        assert is_robbins_monro(InverseSchedule(power=1.0))

    def test_power_between_half_and_one_is_rm(self):
        assert is_robbins_monro(InverseSchedule(power=0.75))

    def test_power_half_not_rm(self):
        # sum eta^2 = sum 1/(1+t) diverges at power = 0.5.
        assert not is_robbins_monro(InverseSchedule(power=0.5))

    def test_rejects_unknown_schedule(self):
        with pytest.raises(TypeError):
            is_robbins_monro(object())

    @given(st.floats(0.65, 1.0))
    def test_rm_conditions_numerically(self, power):
        # Partial sums: sum eta grows without bound, sum eta^2 converges.
        s = InverseSchedule(eta0=1.0, power=power)
        ts = np.arange(100_000)
        etas = s.eta0 / (1.0 + ts / s.t0) ** s.power
        assert etas.sum() > 10.0  # diverging in practice
        tail = (etas[50_000:] ** 2).sum()
        head = (etas[:50_000] ** 2).sum()
        assert tail < 0.30 * head + 1e-6  # square-summable tail


class TestTuneEta0:
    def test_picks_argmin(self):
        # Quadratic probe with minimum at eta0 = 0.25.
        best = tune_eta0(lambda e: (e - 0.25) ** 2, candidates=[0.1, 0.25, 0.5, 1.0])
        assert best == 0.25

    def test_skips_divergent(self):
        best = tune_eta0(
            lambda e: np.inf if e > 0.3 else e, candidates=[0.1, 0.2, 0.5]
        )
        assert best == 0.1

    def test_all_divergent_raises(self):
        with pytest.raises(RuntimeError):
            tune_eta0(lambda e: np.nan, candidates=[0.1, 0.2])

    def test_empty_candidates_raises(self):
        with pytest.raises(ValueError):
            tune_eta0(lambda e: e, candidates=[])

    def test_default_grid(self):
        best = tune_eta0(lambda e: abs(np.log2(e) + 3))
        assert best == pytest.approx(2.0**-3)
